// Exhaustive integer-grid enumeration — the ground-truth oracle.
//
// Walks every integer noise vector in the box with exact arithmetic.  Cost
// is the box volume, so this is the reference the property tests validate
// the clever engines against, and the collector that materializes the full
// adversarial-noise-vector corpus (the paper's P3 loop) for small ranges.
#pragma once

#include <functional>

#include "verify/query.hpp"

namespace fannet::verify {

/// Decision query: stops at the first counterexample.
[[nodiscard]] VerifyResult enumerate_find_first(const Query& query);

/// Collects up to `max_count` counterexamples (all of them if the box
/// volume allows; deterministic lexicographic order).
[[nodiscard]] std::vector<Counterexample> enumerate_collect(
    const Query& query, std::size_t max_count);

/// Streaming variant: invokes `sink` per counterexample; return false from
/// the sink to stop early.  Returns the number of vectors visited.
std::uint64_t enumerate_stream(
    const Query& query,
    const std::function<bool(const Counterexample&)>& sink);

}  // namespace fannet::verify
