/// \file
/// \brief Exhaustive integer-grid enumeration — the ground-truth oracle.
///
/// Walks every integer noise vector in the box with exact arithmetic.  Cost
/// is the box volume, so this is the reference the property tests validate
/// the clever engines against, and the collector that materializes the full
/// adversarial-noise-vector corpus (the paper's P3 loop) for small ranges.
///
/// Internally the walk is batched: noise vectors are staged into an SoA
/// `nn::BatchEvaluator` batch and evaluated through one vectorized MAC
/// kernel (DESIGN.md §10).  Results — verdicts, witnesses, sink calls, the
/// visited count, and ArithmeticError overflow behavior — are bit-identical
/// to the scalar walk for every batch size and thread count:
///
///   - lanes are scanned in odometer order, so the first counterexample and
///     the visited count match the scalar scan (lanes staged past a stop
///     are discarded uncounted);
///   - a lane the batched kernel flags as overflowing is re-run through the
///     scalar path, which throws the genuine exception at exactly the point
///     the scalar walk would have;
///   - the parallel decision walk (enumerate_find_first with threads > 1)
///     splits the box into fixed blocks claimed in ascending order and
///     keeps the lowest-index event, so verdict, witness, and `work` are
///     pure functions of the query.
#pragma once

#include <functional>
#include <memory>

#include "verify/budget.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

class EngineTask;

/// Execution knobs; every setting produces bit-identical results.
struct EnumerateOptions {
  /// Evaluation lanes per batched forward pass: 1 = the scalar reference
  /// walk, 0 = auto (nn::BatchEvaluator::kAutoBatch).  Serial chunk sizes
  /// ramp up from 8 so early-exit decision queries waste little work.
  std::size_t batch = 0;
  /// Worker threads for the decision query (enumerate_find_first only;
  /// streaming and collection stay serial so sink order is the odometer
  /// order): 1 = serial, 0 = one per hardware thread.
  std::size_t threads = 1;
};

/// Decision query: stops at the first counterexample.
[[nodiscard]] VerifyResult enumerate_find_first(
    const Query& query, const EnumerateOptions& options = {});

/// Collects up to `max_count` counterexamples (all of them if the box
/// volume allows; deterministic lexicographic order).
[[nodiscard]] std::vector<Counterexample> enumerate_collect(
    const Query& query, std::size_t max_count,
    const EnumerateOptions& options = {});

/// Streaming variant: invokes `sink` per counterexample; return false from
/// the sink to stop early.  Returns the number of vectors visited.
std::uint64_t enumerate_stream(
    const Query& query,
    const std::function<bool(const Counterexample&)>& sink,
    const EnumerateOptions& options = {});

/// Native incremental task for the decision query (verify/task.hpp): each
/// step scans the next `max_work` grid points (rounded up to whole
/// evaluation blocks) of the linearized box, so the walk pauses, resumes,
/// and honours `budget` deadlines at block granularity.  Verdict, witness,
/// and `work` are bit-identical to `enumerate_find_first` for every step
/// size, batch, and thread count.
[[nodiscard]] std::unique_ptr<EngineTask> make_enumerate_task(
    const Query& query, const EnumerateOptions& options, const Budget& budget);

}  // namespace fannet::verify
