#include "verify/scheduler.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "util/stopwatch.hpp"
#include "util/sync.hpp"
#include "verify/query_cache.hpp"
#include "verify/task.hpp"

namespace fannet::verify {

namespace {

/// Per-batch tallies shared by the worker lanes of one run_* call.
struct DriveTallies {
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> paused{0};
  std::atomic<std::uint64_t> resumed{0};
};

/// Drives one engine task to completion, honouring the batch control and
/// the context's budget.  This is the scheduler's only engine dispatch
/// path: every step boundary is a checkpoint where pause / cancel /
/// deadline take effect, and tasks guarantee bit-identical verdicts and
/// witnesses across any interleaving of those checkpoints.
VerifyResult drive_task(const Engine& engine, const Query& query,
                        const VerifyContext& context, std::uint64_t step_work,
                        BatchControl* control, DriveTallies& tallies) {
  const std::unique_ptr<EngineTask> task = engine.make_task(query, context);
  for (;;) {
    if (control != nullptr) {
      if (control->cancelled()) {
        task->cancel();
      } else if (control->paused()) {
        task->pause();
        tallies.paused.fetch_add(1, std::memory_order_relaxed);
        const bool woken = control->wait_resumed(context.budget.deadline);
        if (control->cancelled()) {
          task->cancel();
        } else {
          // Resumed, or the deadline passed while parked (!woken): either
          // way clear the pause so step() runs — an expired task finalizes
          // itself there.
          task->resume();
          if (woken) tallies.resumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    if (task->step(step_work) == TaskState::kDone) break;
  }
  VerifyResult result = task->result();
  if (result.resource_limited && context.budget.deadline_passed()) {
    tallies.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace

Scheduler::Scheduler(SchedulerOptions options)
    : intra_query_threads_(options.intra_query_threads),
      batch_hint_(options.batch_hint),
      cache_(options.cache),
      deadline_ms_(options.deadline_ms),
      budget_(options.budget),
      step_work_(options.step_work != 0 ? options.step_work
                                        : EngineTask::kDefaultStepWork) {
  threads_ = options.threads != 0
                 ? options.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

QueryCache* Scheduler::effective_cache() const noexcept {
  return cache_ != nullptr ? cache_ : global_query_cache();
}

std::size_t Scheduler::intra_grant(std::size_t batch_size) const noexcept {
  if (intra_query_threads_ != 0) return intra_query_threads_;
  // Leftover threads: lanes the batch actually occupies, the rest handed
  // to each engine dispatch.  A full batch grants 1 (pure across-queries
  // fan-out); a lone query gets the whole budget.
  const std::size_t lanes =
      std::max<std::size_t>(1, std::min(threads_, batch_size));
  return std::max<std::size_t>(1, threads_ / lanes);
}

VerifyResult Scheduler::verify_one(const Query& query, const Engine& engine,
                                   bool* hit) const {
  // Solo dispatches are usually probe chains inside a parallel_for lane,
  // so the auto grant stays at 1; an explicit intra_query_threads setting
  // is honoured as-is.
  VerifyContext context{
      .threads = intra_query_threads_ != 0 ? intra_query_threads_ : 1,
      .batch_hint = batch_hint_,
      .budget = budget_};
  if (deadline_ms_ != 0) context.budget.deadline = Budget::after_ms(deadline_ms_);
  DriveTallies tallies;
  const VerifyResult result = cached_verify(
      effective_cache(), query, engine,
      [&] {
        return drive_task(engine, query, context, step_work_,
                          /*control=*/nullptr, tallies);
      },
      hit);
  deadline_expired_total_.fetch_add(tallies.deadline_expired.load(),
                                    std::memory_order_relaxed);
  return result;
}

void Scheduler::parallel_for(std::size_t count,
                             const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  util::FirstError error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        error.capture();
        // Drain the remaining work so the pool exits promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  error.rethrow_if_set();
}

std::vector<VerifyResult> Scheduler::run_all(std::span<const Query> queries,
                                             const Engine& engine,
                                             BatchStats* stats,
                                             BatchControl* control) const {
  const util::Stopwatch watch;
  QueryCache* const cache = effective_cache();
  const VerifyContext base{.threads = intra_grant(queries.size()),
                           .batch_hint = batch_hint_,
                           .budget = budget_};
  std::vector<VerifyResult> results(queries.size());
  std::atomic<std::uint64_t> hits{0};
  DriveTallies tallies;
  parallel_for(queries.size(), [&](std::size_t i) {
    // Arm the per-query deadline at dispatch, not batch start: every query
    // gets the full window regardless of where it lands in the batch.
    VerifyContext context = base;
    if (deadline_ms_ != 0) {
      context.budget.deadline = Budget::after_ms(deadline_ms_);
    }
    bool hit = false;
    results[i] = cached_verify(
        cache, queries[i], engine,
        [&] {
          return drive_task(engine, queries[i], context, step_work_, control,
                            tallies);
        },
        &hit);
    if (hit) hits.fetch_add(1, std::memory_order_relaxed);
  });
  deadline_expired_total_.fetch_add(tallies.deadline_expired.load(),
                                    std::memory_order_relaxed);
  if (stats != nullptr) {
    stats->queries = queries.size();
    stats->executed = queries.size();
    stats->threads = std::min(threads_, std::max<std::size_t>(1, queries.size()));
    stats->total_work = 0;
    for (const VerifyResult& r : results) stats->total_work += r.work;
    stats->cache_enabled = cache != nullptr;
    stats->cache_hits = hits.load();
    stats->cache_misses = queries.size() - stats->cache_hits;
    stats->deadline_expired = tallies.deadline_expired.load();
    stats->paused = tallies.paused.load();
    stats->resumed = tallies.resumed.load();
    stats->wall_ms = watch.millis();
  }
  return results;
}

std::optional<Scheduler::Witness> Scheduler::run_until_witness(
    std::span<const Query> queries, const Engine& engine, BatchStats* stats,
    BatchControl* control) const {
  const util::Stopwatch watch;
  QueryCache* const cache = effective_cache();
  const std::size_t count = queries.size();
  const VerifyContext base{.threads = intra_grant(count),
                           .batch_hint = batch_hint_,
                           .budget = budget_};
  std::vector<VerifyResult> results(count);
  DriveTallies tallies;

  // Cancellation bound: the lowest index known to be vulnerable.  Indices
  // above it can no longer be the lowest witness and are skipped; indices
  // below it always run, which is what makes the final answer — the lowest
  // vulnerable index overall — independent of the thread count.
  std::atomic<std::size_t> bound{count};
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> total_work{0};
  std::atomic<std::size_t> num_executed{0};
  std::atomic<std::uint64_t> cache_hits{0};
  util::FirstError error;

  const std::size_t workers = std::min(std::max<std::size_t>(1, threads_),
                                       std::max<std::size_t>(1, count));
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (i > bound.load(std::memory_order_acquire)) continue;  // cancelled
      try {
        VerifyContext context = base;
        if (deadline_ms_ != 0) {
          context.budget.deadline = Budget::after_ms(deadline_ms_);
        }
        bool hit = false;
        results[i] = cached_verify(
            cache, queries[i], engine,
            [&] {
              return drive_task(engine, queries[i], context, step_work_,
                                control, tallies);
            },
            &hit);
        if (hit) cache_hits.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        error.capture();
        next.store(count, std::memory_order_relaxed);
        return;
      }
      num_executed.fetch_add(1, std::memory_order_relaxed);
      total_work.fetch_add(results[i].work, std::memory_order_relaxed);
      if (results[i].verdict == Verdict::kVulnerable) {
        std::size_t seen = bound.load(std::memory_order_acquire);
        while (i < seen &&
               !bound.compare_exchange_weak(seen, i,
                                            std::memory_order_acq_rel)) {
        }
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  error.rethrow_if_set();
  deadline_expired_total_.fetch_add(tallies.deadline_expired.load(),
                                    std::memory_order_relaxed);

  if (stats != nullptr) {
    stats->queries = count;
    stats->executed = num_executed.load();
    stats->threads = workers;
    stats->total_work = total_work.load();
    stats->cache_enabled = cache != nullptr;
    stats->cache_hits = cache_hits.load();
    stats->cache_misses = stats->executed - stats->cache_hits;
    stats->deadline_expired = tallies.deadline_expired.load();
    stats->paused = tallies.paused.load();
    stats->resumed = tallies.resumed.load();
    stats->wall_ms = watch.millis();
  }

  const std::size_t w = bound.load();
  if (w == count) return std::nullopt;
  Witness witness;
  witness.index = w;
  witness.result = results[w];
  return witness;
}

}  // namespace fannet::verify
