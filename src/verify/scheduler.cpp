#include "verify/scheduler.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/stopwatch.hpp"
#include "verify/query_cache.hpp"

namespace fannet::verify {

Scheduler::Scheduler(SchedulerOptions options)
    : intra_query_threads_(options.intra_query_threads),
      batch_hint_(options.batch_hint),
      cache_(options.cache) {
  threads_ = options.threads != 0
                 ? options.threads
                 : std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

QueryCache* Scheduler::effective_cache() const noexcept {
  return cache_ != nullptr ? cache_ : global_query_cache();
}

std::size_t Scheduler::intra_grant(std::size_t batch_size) const noexcept {
  if (intra_query_threads_ != 0) return intra_query_threads_;
  // Leftover threads: lanes the batch actually occupies, the rest handed
  // to each engine dispatch.  A full batch grants 1 (pure across-queries
  // fan-out); a lone query gets the whole budget.
  const std::size_t lanes =
      std::max<std::size_t>(1, std::min(threads_, batch_size));
  return std::max<std::size_t>(1, threads_ / lanes);
}

VerifyResult Scheduler::verify_one(const Query& query, const Engine& engine,
                                   bool* hit) const {
  // Solo dispatches are usually probe chains inside a parallel_for lane,
  // so the auto grant stays at 1; an explicit intra_query_threads setting
  // is honoured as-is.
  const VerifyContext context{
      .threads = intra_query_threads_ != 0 ? intra_query_threads_ : 1,
      .batch_hint = batch_hint_};
  return cached_verify(effective_cache(), query, engine, context, hit);
}

void Scheduler::parallel_for(std::size_t count,
                             const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  const std::size_t workers = std::min(threads_, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        // Drain the remaining work so the pool exits promptly.
        next.store(count, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<VerifyResult> Scheduler::run_all(std::span<const Query> queries,
                                             const Engine& engine,
                                             BatchStats* stats) const {
  const util::Stopwatch watch;
  QueryCache* const cache = effective_cache();
  const VerifyContext context{.threads = intra_grant(queries.size()),
                              .batch_hint = batch_hint_};
  std::vector<VerifyResult> results(queries.size());
  std::atomic<std::uint64_t> hits{0};
  parallel_for(queries.size(), [&](std::size_t i) {
    bool hit = false;
    results[i] = cached_verify(cache, queries[i], engine, context, &hit);
    if (hit) hits.fetch_add(1, std::memory_order_relaxed);
  });
  if (stats != nullptr) {
    stats->queries = queries.size();
    stats->executed = queries.size();
    stats->threads = std::min(threads_, std::max<std::size_t>(1, queries.size()));
    stats->total_work = 0;
    for (const VerifyResult& r : results) stats->total_work += r.work;
    stats->cache_enabled = cache != nullptr;
    stats->cache_hits = hits.load();
    stats->cache_misses = queries.size() - stats->cache_hits;
    stats->wall_ms = watch.millis();
  }
  return results;
}

std::optional<Scheduler::Witness> Scheduler::run_until_witness(
    std::span<const Query> queries, const Engine& engine,
    BatchStats* stats) const {
  const util::Stopwatch watch;
  QueryCache* const cache = effective_cache();
  const std::size_t count = queries.size();
  const VerifyContext context{.threads = intra_grant(count),
                              .batch_hint = batch_hint_};
  std::vector<VerifyResult> results(count);

  // Cancellation bound: the lowest index known to be vulnerable.  Indices
  // above it can no longer be the lowest witness and are skipped; indices
  // below it always run, which is what makes the final answer — the lowest
  // vulnerable index overall — independent of the thread count.
  std::atomic<std::size_t> bound{count};
  std::atomic<std::size_t> next{0};
  std::atomic<std::uint64_t> total_work{0};
  std::atomic<std::size_t> num_executed{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;

  const std::size_t workers = std::min(std::max<std::size_t>(1, threads_),
                                       std::max<std::size_t>(1, count));
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      if (i > bound.load(std::memory_order_acquire)) continue;  // cancelled
      try {
        bool hit = false;
        results[i] = cached_verify(cache, queries[i], engine, context, &hit);
        if (hit) cache_hits.fetch_add(1, std::memory_order_relaxed);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(count, std::memory_order_relaxed);
        return;
      }
      num_executed.fetch_add(1, std::memory_order_relaxed);
      total_work.fetch_add(results[i].work, std::memory_order_relaxed);
      if (results[i].verdict == Verdict::kVulnerable) {
        std::size_t seen = bound.load(std::memory_order_acquire);
        while (i < seen &&
               !bound.compare_exchange_weak(seen, i,
                                            std::memory_order_acq_rel)) {
        }
      }
    }
  };

  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  if (stats != nullptr) {
    stats->queries = count;
    stats->executed = num_executed.load();
    stats->threads = workers;
    stats->total_work = total_work.load();
    stats->cache_enabled = cache != nullptr;
    stats->cache_hits = cache_hits.load();
    stats->cache_misses = stats->executed - stats->cache_hits;
    stats->wall_ms = watch.millis();
  }

  const std::size_t w = bound.load();
  if (w == count) return std::nullopt;
  Witness witness;
  witness.index = w;
  witness.result = results[w];
  return witness;
}

}  // namespace fannet::verify
