#include "verify/engine.hpp"

#include <sstream>
#include <utility>

#include "util/error.hpp"
#include "verify/bnb.hpp"
#include "verify/enumerate.hpp"
#include "verify/interval.hpp"
#include "verify/symbolic.hpp"
#include "verify/task.hpp"

namespace fannet::verify {

namespace {

// Adapters over the free-function strategies.  Each is stateless, so one
// shared instance serves every thread.
class EnumerateEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "enumerate";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] VerifyResult verify(const Query& query) const override {
    return enumerate_find_first(query);
  }
  [[nodiscard]] VerifyResult verify_with(
      const Query& query, const VerifyContext& context) const override {
    EnumerateOptions options;
    options.batch = context.batch_hint;
    options.threads = std::max<std::size_t>(1, context.threads);
    return enumerate_find_first(query, options);
  }
  [[nodiscard]] EngineCaps caps() const noexcept override {
    return EngineCaps{.complete = true,
                      .deadline = true,
                      .budget = false,
                      .native_task = true};
  }
  [[nodiscard]] std::unique_ptr<EngineTask> make_task(
      const Query& query, const VerifyContext& context) const override {
    EnumerateOptions options;
    options.batch = context.batch_hint;
    options.threads = std::max<std::size_t>(1, context.threads);
    return make_enumerate_task(query, options, context.budget);
  }
};

class IntervalEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "interval";
  }
  [[nodiscard]] bool complete() const noexcept override { return false; }
  [[nodiscard]] VerifyResult verify(const Query& query) const override {
    return interval_verify(query);
  }
};

class SymbolicEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "symbolic";
  }
  [[nodiscard]] bool complete() const noexcept override { return false; }
  [[nodiscard]] VerifyResult verify(const Query& query) const override {
    return symbolic_verify(query);
  }
};

class BnbEngine final : public Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bnb";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] VerifyResult verify(const Query& query) const override {
    return bnb_verify(query);
  }
  [[nodiscard]] VerifyResult verify_with(
      const Query& query, const VerifyContext& context) const override {
    return bnb_verify(query, resolve_options(context));
  }
  [[nodiscard]] EngineCaps caps() const noexcept override {
    return EngineCaps{.complete = true,
                      .deadline = true,
                      .budget = true,
                      .native_task = true};
  }
  [[nodiscard]] std::unique_ptr<EngineTask> make_task(
      const Query& query, const VerifyContext& context) const override {
    return make_bnb_task(query, resolve_options(context));
  }

 private:
  [[nodiscard]] static BnbOptions resolve_options(
      const VerifyContext& context) {
    BnbOptions options;
    options.threads = std::max<std::size_t>(1, context.threads);
    options.batch = context.batch_hint;
    options.budget = context.budget;
    if (context.budget.max_boxes > 0) {
      options.max_boxes = context.budget.max_boxes;
    }
    return options;
  }
};

/// Staged pipeline task for the cascade: one native sub-task per stage,
/// advanced one bounded sub-step per parent step.  A stage deciding the
/// query (or the last stage finishing) finalizes with work accumulated
/// across every stage that ran — the exact composition rule of
/// CascadeEngine::verify_with.  A deadline/cancel expiry truncates the
/// pipeline instead of starting the next stage (flagged resource_limited,
/// since the skipped stages might have decided).
class CascadeTask final : public EngineTask {
 public:
  CascadeTask(std::vector<const Engine*> stages, Query query,
              VerifyContext context)
      : EngineTask(context.budget),
        stages_(std::move(stages)),
        query_(std::move(query)),
        context_(std::move(context)) {}

 private:
  bool step_impl(std::uint64_t max_work, VerifyResult& out) override {
    if (sub_ == nullptr) {
      sub_ = stages_[stage_]->make_task(query_, context_);
    }
    if (sub_->step(max_work) != TaskState::kDone) return false;
    out = sub_->result();
    work_ += out.work;
    const bool last = stage_ + 1 >= stages_.size();
    const bool truncated =
        !last && out.verdict == Verdict::kUnknown && interrupted();
    if (out.verdict != Verdict::kUnknown || last || truncated) {
      out.work = work_;
      if (truncated) out.resource_limited = true;
      return true;
    }
    ++stage_;
    sub_.reset();
    return false;
  }

  std::vector<const Engine*> stages_;
  Query query_;
  VerifyContext context_;
  std::size_t stage_ = 0;
  std::unique_ptr<EngineTask> sub_;
  std::uint64_t work_ = 0;
};

}  // namespace

std::unique_ptr<EngineTask> Engine::make_task(
    const Query& query, const VerifyContext& context) const {
  return make_generic_task(*this, query, context);
}

void EngineRegistry::add(std::unique_ptr<Engine> engine) {
  if (engine == nullptr) throw InvalidArgument("EngineRegistry::add: null");
  const util::MutexLock lock(mutex_);
  const std::string key(engine->name());
  if (!engines_.emplace(key, std::move(engine)).second) {
    throw InvalidArgument("EngineRegistry::add: duplicate engine '" + key +
                          "'");
  }
}

const Engine& EngineRegistry::get(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  const auto it = engines_.find(name);
  if (it == engines_.end()) {
    std::ostringstream msg;
    msg << "EngineRegistry::get: unknown engine '" << name << "' (known:";
    for (const auto& [key, unused] : engines_) msg << ' ' << key;
    msg << ')';
    throw InvalidArgument(msg.str());
  }
  return *it->second;
}

bool EngineRegistry::contains(std::string_view name) const {
  const util::MutexLock lock(mutex_);
  return engines_.find(name) != engines_.end();
}

std::vector<std::string> EngineRegistry::names() const {
  const util::MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(engines_.size());
  for (const auto& [key, unused] : engines_) out.push_back(key);
  return out;  // std::map iterates in sorted key order
}

EngineRegistry& registry() {
  static EngineRegistry* instance = [] {
    auto* r = new EngineRegistry;
    r->add(std::make_unique<EnumerateEngine>());
    r->add(std::make_unique<IntervalEngine>());
    r->add(std::make_unique<SymbolicEngine>());
    r->add(std::make_unique<BnbEngine>());
    r->add(std::make_unique<CascadeEngine>());
    detail::register_translation_engines(*r);
    return r;  // leaked deliberately: engines outlive every static consumer
  }();
  return *instance;
}

const Engine& engine(std::string_view name) { return registry().get(name); }

CascadeEngine::CascadeEngine(std::vector<std::string> stages)
    : stages_(std::move(stages)) {
  if (stages_.empty()) {
    throw InvalidArgument("CascadeEngine: at least one stage required");
  }
}

std::unique_ptr<CascadeEngine> CascadeEngine::with_stages(
    std::vector<const Engine*> stages) {
  if (stages.empty()) {
    throw InvalidArgument("CascadeEngine: at least one stage required");
  }
  std::vector<std::string> names;
  names.reserve(stages.size());
  for (const Engine* stage : stages) {
    if (stage == nullptr) throw InvalidArgument("CascadeEngine: null stage");
    names.emplace_back(stage->name());
  }
  auto cascade = std::make_unique<CascadeEngine>(std::move(names));
  cascade->preresolved_ = true;
  cascade->resolved_ = std::move(stages);
  return cascade;
}

VerifyResult CascadeEngine::verify(const Query& query) const {
  return verify_with(query, VerifyContext{});
}

VerifyResult CascadeEngine::verify_with(const Query& query,
                                        const VerifyContext& context) const {
  if (!preresolved_) resolve_stages();
  VerifyResult out;
  std::uint64_t work = 0;
  for (const Engine* stage : resolved_) {
    VerifyResult r = stage->verify_with(query, context);
    work += r.work;
    if (r.verdict != Verdict::kUnknown) {
      r.work = work;
      return r;
    }
    out = std::move(r);
  }
  out.work = work;
  return out;  // every stage answered kUnknown
}

std::unique_ptr<EngineTask> CascadeEngine::make_task(
    const Query& query, const VerifyContext& context) const {
  if (!preresolved_) resolve_stages();
  return std::make_unique<CascadeTask>(resolved_, query, context);
}

void CascadeEngine::resolve_stages() const {
  std::call_once(resolve_once_, [this] {
    // Built locally and committed atomically: if a stage lookup throws,
    // call_once stays unsatisfied and a later retry must not see (or
    // duplicate) a half-filled cache.
    std::vector<const Engine*> stages;
    stages.reserve(stages_.size());
    for (const std::string& stage : stages_) {
      stages.push_back(&registry().get(stage));
    }
    resolved_ = std::move(stages);
  });
}

}  // namespace fannet::verify
