/// \file
/// \brief Resumable sharded sweep orchestrator (DESIGN.md §9).
///
/// Every headline FANNet result is a *sweep*: the Fig. 4 tolerance grid,
/// the per-node sensitivity probes, the weight-fault scan — thousands of
/// independent work units whose aggregate is a report.  Run monolithically,
/// an interrupted multi-hour campaign restarts from zero.  `SweepRunner`
/// fixes that layer: a campaign is decomposed into a deterministic,
/// stably-ordered list of *shards* (consecutive unit ranges), each executed
/// shard's result is journaled to an append-only JSON-lines checkpoint
/// file, and a restarted run skips every journaled shard and re-executes
/// only the rest.  The final aggregated report is bit-identical to an
/// uninterrupted run at any thread count, because
///
///   - shard boundaries depend only on (unit count, shard size), never on
///     timing;
///   - each unit's result is deterministic (engines are exact and
///     deterministic, DESIGN.md §2), so a shard payload is a pure function
///     of the campaign configuration.  Shard dispatches inherit the
///     resumable task substrate (DESIGN.md §12) via Scheduler::verify_one,
///     but never a wall-clock deadline: the analyses reject
///     `deadline_ms` + `sweep` so journaled rows stay time-independent;
///   - aggregation (`SweepCampaign::absorb`) runs single-threaded in
///     ascending shard order after all execution, regardless of the
///     completion order the journal happens to record.
///
/// Crash tolerance: a shard line is only trusted if it carries its exact
/// payload byte count and the closing `,"done":true}` marker, so a torn
/// final line from a killed run is detected and discarded on load (the
/// shard simply re-executes).  Duplicate shard entries resolve last-wins,
/// which also makes journals from disjoint `--max-shards` chunks safely
/// concatenable.  A journal whose header does not match the campaign
/// (different network fingerprint, grid, or shard size) is rejected with a
/// clear error instead of silently mixing results.
///
/// The analyses opt in through their config structs
/// (`core::ToleranceConfig::sweep` etc.); `fannet_cli sweep` exposes the
/// whole surface from the shell (docs/cli.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "la/matrix.hpp"

namespace fannet::verify {

/// One shard's payload: a list of integer rows, one row per work unit (the
/// campaign defines the row layout).  Integers round-trip the journal
/// exactly, so a resumed aggregate is bit-identical to a fresh one.
using SweepRows = std::vector<std::vector<std::int64_t>>;

/// A sweep campaign: a fixed, stably-ordered list of independent work
/// units plus the fold that turns unit results back into a report.
/// Implementations live next to the analyses they decompose
/// (`core/fannet.cpp`, `core/analysis.cpp`, `core/faults.cpp`).
class SweepCampaign {
 public:
  virtual ~SweepCampaign() = default;

  /// Stable campaign identifier, recorded in the journal header
  /// (e.g. "tolerance").
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Content fingerprint over everything the unit results depend on —
  /// network fingerprint, analysis configuration, input data — but *not*
  /// thread counts or journal paths.  A journal written under a different
  /// fingerprint is rejected on load.
  [[nodiscard]] virtual std::uint64_t fingerprint() const = 0;

  /// Total number of work units in the campaign.
  [[nodiscard]] virtual std::size_t units() const = 0;

  /// Executes units [begin, end) serially in index order and returns one
  /// row per unit.  Called concurrently for disjoint ranges; must be
  /// thread-safe across them.  Each row must be a pure function of the
  /// campaign configuration (no timing, no shared mutable state).
  [[nodiscard]] virtual SweepRows run_units(std::size_t begin,
                                            std::size_t end) const = 0;

  /// Folds one completed shard back into the campaign's report.  Called on
  /// the runner's thread in ascending shard order, for journaled and
  /// freshly executed shards alike, with exactly the rows `run_units`
  /// produced for [begin, end).  Throws util::Error on rows that do not
  /// fit the campaign's layout (a corrupt journal that still parsed).
  virtual void absorb(std::size_t begin, std::size_t end,
                      const SweepRows& rows) = 0;
};

/// Orchestration knobs; the analysis configs embed this as the opt-in.
struct SweepOptions {
  /// Append-only JSON-lines checkpoint file.  Empty runs the sweep
  /// in-memory (sharded execution, no checkpointing).  A nonexistent or
  /// empty file is a cold start; an existing journal is resumed.
  std::string journal_path = {};
  /// Work units per shard (the checkpoint granularity).  0 means 1.  A
  /// journal remembers its shard size; resuming with a different one is
  /// rejected (shard boundaries would no longer line up).
  std::size_t shard_size = 0;
  /// Executes at most this many shards in this invocation (0 = no cap),
  /// then returns with `SweepProgress::pending_shards` > 0.  This is the
  /// chunking knob for splitting one campaign across process invocations
  /// or machines: run a capped chunk per invocation against the same
  /// journal (or concatenate per-machine journals) until none are pending.
  std::size_t max_shards = 0;
  /// Worker threads for the shard fan-out (0 = hardware concurrency).
  /// Results are identical for every thread count.
  std::size_t threads = 0;
};

/// What one `SweepRunner::run` invocation did.  Reports embed this so
/// callers can tell a complete aggregate from a capped partial one.
struct SweepProgress {
  std::size_t total_shards = 0;
  std::size_t executed_shards = 0;  ///< shards run by this invocation
  std::size_t resumed_shards = 0;   ///< shards answered by the journal
  std::size_t pending_shards = 0;   ///< shards left for a later invocation
  /// Work units actually evaluated this invocation (the re-execution
  /// counter: journaled units never appear here).
  std::uint64_t units_executed = 0;
  /// Torn or malformed journal lines discarded on load (a crash mid-append
  /// leaves at most one).
  std::size_t journal_skipped = 0;
  double wall_ms = 0.0;

  /// True when every shard has been absorbed — the aggregate is the full
  /// campaign result, bit-identical to an uninterrupted run.
  [[nodiscard]] bool complete() const noexcept { return pending_shards == 0; }
};

/// Executes a campaign under the options: plans shards, loads/validates
/// the journal, runs un-journaled shards across the thread pool (capped by
/// `max_shards`), appends each completed shard to the journal, then
/// absorbs every completed shard in ascending order.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Runs (or resumes) `campaign`; throws util::Error on a journal that
  /// cannot be opened or that belongs to a different campaign.
  SweepProgress run(SweepCampaign& campaign) const;

 private:
  SweepOptions options_;
};

/// FNV-1a accumulator for campaign fingerprints, mixing fixed-width
/// little-endian words so fingerprints are stable across platforms (the
/// same discipline as nn::QuantizedNetwork::fingerprint and the query
/// cache's canonical keys).
class SweepFingerprint {
 public:
  void mix_u64(std::uint64_t v) noexcept {
    for (int byte = 0; byte < 8; ++byte) {
      hash_ ^= (v >> (8 * byte)) & 0xffU;
      hash_ *= 1099511628211ULL;
    }
  }
  void mix_i64(std::int64_t v) noexcept {
    mix_u64(static_cast<std::uint64_t>(v));
  }
  void mix_bytes(std::string_view bytes) noexcept {
    mix_u64(bytes.size());
    for (const char c : bytes) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 1099511628211ULL;
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// Mixes a labeled integer dataset — dimensions, every cell, every label —
/// into `fp`.  The one dataset-hashing discipline every campaign
/// fingerprint shares, so a journal can never resume against reshaped or
/// relabeled inputs.
void mix_dataset(SweepFingerprint& fp,
                 const la::Matrix<std::int64_t>& inputs,
                 const std::vector<int>& labels);

}  // namespace fannet::verify
