/// \file
/// \brief Symbolic (affine) bound propagation over the noise deltas.
///
/// Each neuron carries a pair of exact integer affine forms
///     value  in  [ lo.c0 + Σ lo.coeff[d]·δ_d ,  hi.c0 + Σ hi.coeff[d]·δ_d ]
/// over the noise dimensions δ.  The first layer is *exactly* affine in δ
/// (the noise enters multiplicatively against constants), so no precision is
/// lost there; unstable ReLUs concretize (lower form → 0, upper form → its
/// box maximum) the way DeepPoly/Neurify relax, but with integer-exact
/// arithmetic so soundness needs no floating-point care.  Margins are bounded
/// at the *form* level (O_y − O_k cancels shared coefficients), which is what
/// makes this engine a much stronger pruner than plain IBP.
#pragma once

#include "verify/query.hpp"

namespace fannet::verify {

/// Exact integer affine form over the query's noise dimensions.
struct AffineForm {
  util::i128 c0 = 0;
  std::vector<util::i128> coeff;  // one per noise dim

  /// Minimum/maximum of the form over the box.
  [[nodiscard]] util::i128 min_over(const NoiseBox& box) const;
  [[nodiscard]] util::i128 max_over(const NoiseBox& box) const;
};

struct SymbolicBounds {
  /// Per output neuron: lower and upper affine forms of the final layer.
  std::vector<AffineForm> out_lo;
  std::vector<AffineForm> out_hi;
  std::uint64_t unstable_relus = 0;  ///< how many ReLUs were concretized
};

/// Propagates the forms through the network for the query's box.
[[nodiscard]] SymbolicBounds symbolic_bounds(const Query& query);

/// kRobust if the margins certify the label, kUnknown otherwise.
[[nodiscard]] VerifyResult symbolic_verify(const Query& query);

/// Margin analysis used by branch-and-bound: for every k != y returns the
/// exact-form lower and upper bound of M_k = O_y - O_k over the box.
struct MarginBounds {
  std::vector<util::i128> lb;  // indexed by k (entry y unused)
  std::vector<util::i128> ub;
  std::uint64_t unstable_relus = 0;
};
[[nodiscard]] MarginBounds margin_bounds(const Query& query);

/// The margin *forms* behind `margin_bounds`: lower/upper affine forms of
/// M_k = O_y - O_k, valid for every noise vector inside the query's box.
/// Because any sub-box is a subset of that box, evaluating the forms with
/// `min_over`/`max_over` on a sub-box yields sound (if slightly looser)
/// margin bounds without re-propagating the network — this is what lets
/// branch-and-bound *score* candidate child boxes in O(dims) per margin
/// (the best-first box-priority policy, DESIGN.md §4.4).
struct MarginForms {
  std::vector<AffineForm> lo;  // indexed by k (entry y is a zero form)
  std::vector<AffineForm> hi;
  std::uint64_t unstable_relus = 0;
};
[[nodiscard]] MarginForms margin_forms(const Query& query);

}  // namespace fannet::verify
