// Parallel P2 query scheduler (DESIGN.md §5).
//
// FANNet's analyses (tolerance, corpus, sensitivity, boundary, faults) all
// reduce to large batches of independent P2 queries; this fork-join
// scheduler fans a batch across a thread pool while keeping every result
// bit-identical to the serial run:
//
//   - results are written to index-addressed slots, so `run_all` returns
//     them in input order regardless of completion order;
//   - `run_until_witness` decides existence-style batches ("does ANY query
//     in this batch have a counterexample?") and cancels work that can no
//     longer matter, yet still returns the *lowest-index* witness — the
//     same one a serial scan would find — by only skipping indices above
//     the best witness known so far;
//   - `parallel_for` runs non-uniform jobs (per-sample bisections, weight
//     scans) with the same deterministic-slot discipline left to callers.
//
// Exceptions thrown by a task are captured and rethrown on the calling
// thread after the pool drains (first one wins).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "verify/engine.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

struct SchedulerOptions {
  /// 0 = one worker per hardware thread.
  std::size_t threads = 0;
};

/// Per-batch accounting, filled by the run_* entry points.
struct BatchStats {
  std::size_t queries = 0;    ///< batch size
  std::size_t executed = 0;   ///< queries actually decided (cancellation skips)
  std::size_t threads = 0;    ///< workers used for this batch
  std::uint64_t total_work = 0;  ///< sum of per-query VerifyResult::work
  double wall_ms = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Decides every query with `engine`; results are in input order and
  /// identical for any thread count.
  [[nodiscard]] std::vector<VerifyResult> run_all(
      std::span<const Query> queries, const Engine& engine,
      BatchStats* stats = nullptr) const;

  struct Witness {
    std::size_t index = 0;
    VerifyResult result;
  };

  /// Existence query over the batch: returns the lowest-index kVulnerable
  /// result (with its counterexample), or nullopt if no query in the batch
  /// is vulnerable.  Once a witness is known, queries at higher indices are
  /// cancelled — the verdict and the returned witness are still
  /// deterministic for any thread count.
  [[nodiscard]] std::optional<Witness> run_until_witness(
      std::span<const Query> queries, const Engine& engine,
      BatchStats* stats = nullptr) const;

  /// Generic deterministic fan-out: calls fn(i) exactly once for every
  /// i in [0, count), across the pool.  Callers keep determinism by writing
  /// results to index-addressed slots.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t threads_ = 1;
};

}  // namespace fannet::verify
