/// \file
/// \brief Parallel P2 query scheduler (DESIGN.md §5).
///
/// FANNet's analyses (tolerance, corpus, sensitivity, boundary, faults) all
/// reduce to large batches of independent P2 queries; this fork-join
/// scheduler fans a batch across a thread pool while keeping every result
/// bit-identical to the serial run:
///
///   - results are written to index-addressed slots, so `run_all` returns
///     them in input order regardless of completion order;
///   - `run_until_witness` decides existence-style batches ("does ANY query
///     in this batch have a counterexample?") and cancels work that can no
///     longer matter, yet still returns the *lowest-index* witness — the
///     same one a serial scan would find — by only skipping indices above
///     the best witness known so far;
///   - `parallel_for` runs non-uniform jobs (per-sample bisections, weight
///     scans) with the same deterministic-slot discipline left to callers.
///
/// Every query dispatched by `run_all` / `run_until_witness` / `verify_one`
/// first probes the configured `QueryCache` (per-scheduler override or the
/// process-wide cache; see verify/query_cache.hpp and DESIGN.md §7) and
/// memoizes the verdict on a miss; hit/miss counts land in `BatchStats`.
/// Engines are deterministic, so results are identical cache-on vs
/// cache-off.
///
/// Cache misses are decided by *driving the engine's resumable task*
/// (`Engine::make_task`, DESIGN.md §12) in a step loop rather than one
/// blocking `verify_with` call.  That is what makes the batch entry points
/// deadline-aware and controllable: `SchedulerOptions::deadline_ms` arms a
/// fresh per-query `Budget::after_ms` deadline at each dispatch (expiry →
/// kUnknown with `resource_limited`, overshoot bounded by one step), and a
/// `BatchControl` passed to run_all / run_until_witness can pause, resume,
/// or cancel the whole in-flight batch between steps.  Because tasks
/// checkpoint at step boundaries without changing what they compute,
/// verdicts and witnesses are bit-identical to the uninterrupted run.
///
/// Exceptions thrown by a task are captured and rethrown on the calling
/// thread after the pool drains (first one wins).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "verify/budget.hpp"
#include "verify/engine.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

class QueryCache;

/// Construction-time configuration for a Scheduler.
struct SchedulerOptions {
  /// Worker count; 0 = one worker per hardware thread.
  std::size_t threads = 0;
  /// Intra-query worker budget granted to each engine dispatch (via
  /// `Engine::verify_with`), so inter- and intra-query parallelism share
  /// one thread budget instead of oversubscribing.  0 (the default) means
  /// *leftover threads*: when a batch has fewer queries than workers, the
  /// idle workers are handed to the engines (branch-and-bound's
  /// work-stealing frontier; the cascade forwards the grant to its final
  /// bnb stage) — one hard query on an otherwise idle machine then uses
  /// every core.  Full batches grant 1, i.e. the classic across-queries
  /// fan-out.  Verdicts and witnesses are identical for every setting;
  /// bnb's `work` box count is only bit-deterministic under a grant of 1.
  std::size_t intra_query_threads = 0;
  /// SoA evaluation lanes granted to every engine dispatch (via
  /// `VerifyContext::batch_hint`): 0 = auto (nn::BatchEvaluator::kAutoBatch),
  /// 1 = the scalar reference path.  Grid-walking engines (enumerate, bnb)
  /// stage this many noise vectors per vectorized forward pass
  /// (DESIGN.md §10); results are bit-identical for every value.
  std::size_t batch_hint = 0;
  /// Per-batch memoization layer probed before every engine dispatch.
  /// Null (the default) falls back to `global_query_cache()`, which is
  /// itself null unless a tool installed one — so caching is opt-in and
  /// existing call sites are unaffected.  The caller retains ownership.
  QueryCache* cache = nullptr;
  /// Per-query wall-clock deadline in milliseconds; 0 = none.  Armed
  /// afresh (`Budget::after_ms`) for every dispatched query at the moment
  /// its task starts, so each query gets the full window regardless of
  /// batch position.  An expired query finalizes to kUnknown with
  /// `resource_limited` set (witness-in-hand results keep kVulnerable);
  /// overshoot past the deadline is bounded by a single task step.  Time
  /// spent parked under a `BatchControl` pause counts against the window.
  std::uint64_t deadline_ms = 0;
  /// Base resource budget threaded into every dispatch (box / conflict /
  /// propagation caps, external cancel token).  `deadline_ms` layers the
  /// per-query deadline on top of this; leave the deadline field unset
  /// here unless one absolute time point should cover the whole batch.
  Budget budget = {};
  /// Work units per task step in the drive loop (boxes for bnb, grid
  /// points for enumerate, CDCL conflicts for sat; see EngineTask::step).
  /// 0 = EngineTask::kDefaultStepWork.  Smaller steps tighten deadline
  /// overshoot and pause latency at slightly higher stepping overhead;
  /// verdicts and witnesses are identical for every value.
  std::uint64_t step_work = 0;
};

/// Cooperative control surface for an in-flight batch.  Pass one instance
/// to `run_all` / `run_until_witness` and flip it from any other thread:
///
///   - `pause()`   parks every in-flight task at its next step boundary
///                 (workers block; cache hits and already-finished queries
///                 are unaffected);
///   - `resume()`  wakes the parked tasks to continue exactly where they
///                 stopped — verdicts and witnesses are bit-identical to a
///                 never-paused run;
///   - `cancel()`  finalizes every unfinished query to kUnknown with
///                 `resource_limited` set (witness-in-hand results keep
///                 kVulnerable) and lets the batch return promptly.
///
/// All methods are safe to call concurrently and repeatedly; cancel wins
/// over pause.  One instance may be reused across sequential batches (but
/// `cancel()` is sticky — construct a fresh control to run uncancelled).
class BatchControl {
 public:
  void pause() {
    const util::MutexLock lock(mutex_);
    paused_.store(true, std::memory_order_release);
  }
  void resume() {
    {
      const util::MutexLock lock(mutex_);
      paused_.store(false, std::memory_order_release);
    }
    cv_.notify_all();
  }
  void cancel() {
    {
      const util::MutexLock lock(mutex_);
      cancelled_.store(true, std::memory_order_release);
    }
    cv_.notify_all();
  }
  [[nodiscard]] bool paused() const noexcept {
    return paused_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Blocks until the control is resumed or cancelled; with a deadline,
  /// returns false once it passes (so an expired query can finalize while
  /// the batch stays paused).  Called by the scheduler's drive loop —
  /// not part of the public surface.
  bool wait_resumed(
      const std::optional<std::chrono::steady_clock::time_point>& deadline)
      FANNET_EXCLUDES(mutex_) {
    const util::MutexLock lock(mutex_);
    const auto ready = [this] {
      return !paused_.load(std::memory_order_acquire) ||
             cancelled_.load(std::memory_order_acquire);
    };
    if (!deadline.has_value()) {
      cv_.wait(mutex_, ready);
      return true;
    }
    return cv_.wait_until(mutex_, *deadline, ready);
  }

 private:
  /// The flags stay atomic so `paused()` / `cancelled()` are lock-free
  /// polls from the drive loop; the mutex exists for the flag/notify race
  /// in wait_resumed (a flip between the predicate check and the wait must
  /// not be missed), so every *write* happens under it.
  std::atomic<bool> paused_{false};
  std::atomic<bool> cancelled_{false};
  util::Mutex mutex_;  ///< guards the flag/notify race in wait_resumed
  util::CondVar cv_;
};

/// Per-batch accounting, filled by the run_* entry points.
struct BatchStats {
  std::size_t queries = 0;    ///< batch size
  std::size_t executed = 0;   ///< queries actually decided (cancellation skips)
  std::size_t threads = 0;    ///< workers used for this batch
  std::uint64_t total_work = 0;  ///< sum of per-query VerifyResult::work
  bool cache_enabled = false;      ///< whether a query cache was probed
  std::uint64_t cache_hits = 0;    ///< decided from the query cache
  /// Queries that dispatched an engine.  With no cache configured every
  /// executed query is a miss (nothing could answer it), so
  /// `cache_hits + cache_misses == executed` always holds; check
  /// `cache_enabled` to tell "cache off" from "cache cold".
  std::uint64_t cache_misses = 0;
  /// Queries whose per-dispatch deadline (`SchedulerOptions::deadline_ms`
  /// or a batch-wide `budget.deadline`) expired before the task finished;
  /// each finalized with `resource_limited` set.
  std::uint64_t deadline_expired = 0;
  /// Task pause transitions taken in the drive loop: one per in-flight
  /// task per `BatchControl::pause()` it parked for.
  std::uint64_t paused = 0;
  /// Pause transitions that continued via `BatchControl::resume()` (as
  /// opposed to ending in cancellation or deadline expiry).
  std::uint64_t resumed = 0;
  double wall_ms = 0.0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerOptions options = {});

  /// Workers this scheduler fans batches across (resolved, >= 1).
  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// Decides one query through the cache tier (probe, engine dispatch on a
  /// miss, memoize).  This is the single dispatch point every batch entry
  /// goes through; analyses use it for their non-batch probe chains
  /// (tolerance descents, solo bisections) so those memoize too.
  /// `hit`, when non-null, reports whether the cache answered.
  [[nodiscard]] VerifyResult verify_one(const Query& query,
                                        const Engine& engine,
                                        bool* hit = nullptr) const;

  /// Decides every query with `engine`; results are in input order and
  /// identical for any thread count.
  /// \param queries the batch; each must satisfy Query::validate().
  /// \param engine the decision strategy (from the engine registry).
  /// \param stats optional per-batch accounting, overwritten on return.
  /// \param control optional pause/resume/cancel surface for the batch.
  [[nodiscard]] std::vector<VerifyResult> run_all(
      std::span<const Query> queries, const Engine& engine,
      BatchStats* stats = nullptr, BatchControl* control = nullptr) const;

  struct Witness {
    std::size_t index = 0;
    VerifyResult result;
  };

  /// Existence query over the batch: returns the lowest-index kVulnerable
  /// result (with its counterexample), or nullopt if no query in the batch
  /// is vulnerable.  Once a witness is known, queries at higher indices are
  /// cancelled — the verdict and the returned witness are still
  /// deterministic for any thread count.
  [[nodiscard]] std::optional<Witness> run_until_witness(
      std::span<const Query> queries, const Engine& engine,
      BatchStats* stats = nullptr, BatchControl* control = nullptr) const;

  /// Generic deterministic fan-out: calls fn(i) exactly once for every
  /// i in [0, count), across the pool.  Callers keep determinism by writing
  /// results to index-addressed slots.
  /// \param count number of independent jobs.
  /// \param fn job body; invoked concurrently, must be thread-safe.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) const;

  /// Intra-query thread grant for a batch of `batch_size` jobs: the
  /// explicit `intra_query_threads` setting when non-zero, otherwise the
  /// leftover threads once the batch is spread across the workers
  /// (>= 1).  This is the single budget-splitting policy — callers that
  /// fan out engine-adjacent work themselves (e.g. extract_corpus's
  /// per-sample bnb_collect loops) read their grant from here instead of
  /// re-deriving it.
  [[nodiscard]] std::size_t intra_grant(std::size_t batch_size) const noexcept;

  /// Total queries (across every run_* / verify_one call on this scheduler)
  /// whose deadline expired.  Analyses surface this on their reports so a
  /// sweep cut short by `deadline_ms` is visible, not silent.
  [[nodiscard]] std::uint64_t deadline_expired_total() const noexcept {
    return deadline_expired_total_.load(std::memory_order_relaxed);
  }

 private:
  /// The cache batches go through: the per-scheduler override when set,
  /// else the process-wide cache (re-read per call, so installing a global
  /// cache affects schedulers that analyses have already constructed).
  [[nodiscard]] QueryCache* effective_cache() const noexcept;

  std::size_t threads_ = 1;
  std::size_t intra_query_threads_ = 0;
  std::size_t batch_hint_ = 0;
  QueryCache* cache_ = nullptr;
  std::uint64_t deadline_ms_ = 0;
  Budget budget_;
  std::uint64_t step_work_ = 0;
  mutable std::atomic<std::uint64_t> deadline_expired_total_{0};
};

}  // namespace fannet::verify
