#include "verify/bnb.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "verify/enumerate.hpp"
#include "verify/interval.hpp"
#include "verify/symbolic.hpp"

namespace fannet::verify {

using util::i128;

namespace {

enum class BoxStatus { kNoFlipAnywhere, kFlipEverywhere, kUndecided };

/// Classifies a whole box via the bounding engines.
BoxStatus classify_box(const Query& q, const BnbOptions& options) {
  const auto y = static_cast<std::size_t>(q.true_label);
  if (options.use_symbolic) {
    const MarginBounds mb = margin_bounds(q);
    bool all_safe = true;
    for (std::size_t k = 0; k < mb.lb.size(); ++k) {
      if (k == y) continue;
      const i128 needed = (k < y) ? 1 : 0;
      if (mb.lb[k] < needed) all_safe = false;
      // Flip-everywhere via k: O_k beats O_y on the whole box.
      const bool flips = (k < y) ? (mb.ub[k] <= 0) : (mb.ub[k] < 0);
      if (flips) return BoxStatus::kFlipEverywhere;
    }
    return all_safe ? BoxStatus::kNoFlipAnywhere : BoxStatus::kUndecided;
  }
  // IBP fallback: certificate only (no flip-everywhere detection).
  return interval_verify(q).verdict == Verdict::kRobust
             ? BoxStatus::kNoFlipAnywhere
             : BoxStatus::kUndecided;
}

Counterexample make_cex(const Query& q, std::span<const int> deltas,
                        int mis_label) {
  Counterexample cex;
  cex.deltas.assign(deltas.begin(),
                    deltas.begin() + static_cast<std::ptrdiff_t>(q.x.size()));
  cex.bias_delta = q.bias_node ? deltas[q.x.size()] : 0;
  cex.mis_label = mis_label;
  return cex;
}

}  // namespace

std::uint64_t bnb_stream(const Query& query,
                         const std::function<bool(const Counterexample&)>& sink,
                         BnbOptions options) {
  query.validate();
  std::uint64_t boxes = 0;
  std::vector<NoiseBox> stack{query.box};
  Query sub = query;

  while (!stack.empty()) {
    if (++boxes > options.max_boxes) {
      throw ResourceLimit("bnb: box budget exceeded");
    }
    NoiseBox box = std::move(stack.back());
    stack.pop_back();
    sub.box = box;

    if (box.is_singleton()) {
      const std::vector<int>& point = box.lo;
      const int label = classify_under_noise(sub, point);
      if (label != query.true_label) {
        if (!sink(make_cex(query, point, label))) return boxes;
      }
      continue;
    }

    const BoxStatus status = classify_box(sub, options);
    if (status == BoxStatus::kNoFlipAnywhere) continue;
    if (status == BoxStatus::kFlipEverywhere) {
      // Every grid point in the box is a counterexample: enumerate them
      // directly (cheap exact evals; no further bounding needed).
      bool keep_going = true;
      enumerate_stream(sub, [&](const Counterexample& cex) {
        keep_going = sink(cex);
        return keep_going;
      });
      if (!keep_going) return boxes;
      continue;
    }

    // Bisect the longest edge.
    std::size_t dim = 0;
    int best_span = -1;
    for (std::size_t d = 0; d < box.dims(); ++d) {
      const int span = box.hi[d] - box.lo[d];
      if (span > best_span) {
        best_span = span;
        dim = d;
      }
    }
    const int mid = box.lo[dim] + (box.hi[dim] - box.lo[dim]) / 2;
    NoiseBox left = box, right = box;
    left.hi[dim] = mid;
    right.lo[dim] = mid + 1;
    stack.push_back(std::move(right));
    stack.push_back(std::move(left));
  }
  return boxes;
}

VerifyResult bnb_verify(const Query& query, BnbOptions options) {
  VerifyResult result;
  result.verdict = Verdict::kRobust;
  result.work = bnb_stream(
      query,
      [&](const Counterexample& cex) {
        result.verdict = Verdict::kVulnerable;
        result.counterexample = cex;
        return false;
      },
      options);
  return result;
}

std::vector<Counterexample> bnb_collect(const Query& query,
                                        std::size_t max_count,
                                        BnbOptions options) {
  std::vector<Counterexample> out;
  bnb_stream(
      query,
      [&](const Counterexample& cex) {
        out.push_back(cex);
        return out.size() < max_count;
      },
      options);
  return out;
}

}  // namespace fannet::verify
