#include "verify/bnb.hpp"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "nn/batch_eval.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"
#include "util/thread_annotations.hpp"
#include "verify/interval.hpp"
#include "verify/symbolic.hpp"
#include "verify/task.hpp"

namespace fannet::verify {

using util::i128;

namespace {

Counterexample make_cex(const Query& q, std::span<const int> deltas,
                        int mis_label) {
  Counterexample cex;
  cex.deltas.assign(deltas.begin(),
                    deltas.begin() + static_cast<std::ptrdiff_t>(q.x.size()));
  cex.bias_delta = q.bias_node ? deltas[q.x.size()] : 0;
  cex.mis_label = mis_label;
  return cex;
}

/// Visits every grid point of `box` in ascending lexicographic order (the
/// full noise vector, first dimension most significant), until `fn`
/// returns false.  Lex order is what makes the top-K early stop sound:
/// once a visited point reaches the prune bound, every later point does.
template <typename Fn>
void for_each_lex(const NoiseBox& box, Fn&& fn) {
  std::vector<int> p(box.lo);
  for (;;) {
    if (!fn(p)) return;
    std::size_t d = box.dims();
    while (d > 0) {
      if (++p[d - 1] <= box.hi[d - 1]) break;
      p[d - 1] = box.lo[d - 1];
      --d;
    }
    if (d == 0) return;
  }
}

/// Work-stealing frontier of boxes: one deque per worker.  Owners push and
/// pop at their own back (depth-first), idle workers steal the *oldest*
/// half of a victim's deque — the shallowest boxes, which bisect into the
/// most further work, so one steal keeps a thief busy for a while.
/// Termination: a global in-flight count covers queued *and*
/// being-processed boxes; when it hits zero no box exists and none can be
/// created, so every worker drains out of pop().
class Frontier {
 public:
  explicit Frontier(std::size_t workers) : lanes_(workers) {}

  void push(std::size_t w, NoiseBox box) {
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    Lane& lane = lanes_[w];
    const util::MutexLock lock(lane.mutex);
    lane.deque.push_back(std::move(box));
  }

  /// Pops the caller's newest box, stealing when its own lane is empty.
  /// Returns false once the search is over — `quit` was raised or the
  /// frontier is globally drained — or, when `yield` is set, once a step
  /// quota asks the workers to park (the frontier stays intact for the
  /// next step; popped boxes are always fully processed).
  bool pop(std::size_t w, NoiseBox& out, const std::atomic<bool>& quit,
           const std::atomic<bool>* yield = nullptr) {
    for (;;) {
      if (quit.load(std::memory_order_acquire)) return false;
      if (yield != nullptr && yield->load(std::memory_order_acquire)) {
        return false;
      }
      {
        Lane& lane = lanes_[w];
        const util::MutexLock lock(lane.mutex);
        if (!lane.deque.empty()) {
          out = std::move(lane.deque.back());
          lane.deque.pop_back();
          return true;
        }
      }
      if (steal_into(w)) continue;
      if (in_flight_.load(std::memory_order_acquire) == 0) return false;
      std::this_thread::yield();
    }
  }

  /// Marks one popped box fully processed (its children, if any, were
  /// pushed before this call, so in-flight never dips to zero early).
  void done() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  /// True when no box is queued or being processed — the search space is
  /// fully explored (checked between steps, when no worker is running).
  [[nodiscard]] bool drained() const noexcept {
    return in_flight_.load(std::memory_order_acquire) == 0;
  }

 private:
  struct Lane {
    util::Mutex mutex;
    std::deque<NoiseBox> deque FANNET_GUARDED_BY(mutex);
  };

  /// Steal-half: moves the older half of the first non-empty victim lane
  /// into lane `w` (age order preserved).  Returns whether anything moved.
  bool steal_into(std::size_t w) {
    const std::size_t n = lanes_.size();
    for (std::size_t off = 1; off < n; ++off) {
      Lane& victim = lanes_[(w + off) % n];
      std::deque<NoiseBox> loot;
      {
        const util::MutexLock lock(victim.mutex);
        const std::size_t have = victim.deque.size();
        if (have == 0) continue;
        const auto take = static_cast<std::ptrdiff_t>((have + 1) / 2);
        loot.assign(std::make_move_iterator(victim.deque.begin()),
                    std::make_move_iterator(victim.deque.begin() + take));
        victim.deque.erase(victim.deque.begin(), victim.deque.begin() + take);
      }
      Lane& mine = lanes_[w];
      const util::MutexLock lock(mine.mutex);
      for (NoiseBox& box : loot) mine.deque.push_back(std::move(box));
      return true;
    }
    return false;
  }

  std::vector<Lane> lanes_;
  std::atomic<std::size_t> in_flight_{0};
};

/// The K lexicographically-smallest counterexamples found so far, keyed by
/// the full noise vector.  Once full, the largest member is the global
/// frontier prune bound: a box whose lex-min corner (box.lo) is >= it
/// cannot contribute, because frontier boxes are disjoint from every
/// region already searched and the set only ever improves.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void offer(const std::vector<int>& point, int mis_label) {
    const util::MutexLock lock(mutex_);
    if (set_.size() == k_) {
      const auto last = std::prev(set_.end());
      if (!(point < last->first)) return;
      set_.erase(last);
    }
    set_.emplace(point, mis_label);
    version_.fetch_add(1, std::memory_order_release);
  }

  /// Worker-local bound cache: re-copies the bound only when the set
  /// version moved, so the hot prune check is one relaxed atomic load.
  /// Returns whether a bound exists (the set is full).
  bool refresh(std::uint64_t& seen_version,
               std::optional<std::vector<int>>& bound) const {
    const std::uint64_t v = version_.load(std::memory_order_acquire);
    if (v != seen_version) {
      const util::MutexLock lock(mutex_);
      seen_version = version_.load(std::memory_order_relaxed);
      if (set_.size() == k_) bound = std::prev(set_.end())->first;
    }
    return bound.has_value();
  }

  /// Moves the set out.  Callers invoke this after the worker pool joined,
  /// but taking the lock anyway is free there and keeps the guarded-field
  /// rule exception-free.
  [[nodiscard]] std::map<std::vector<int>, int> take() {
    const util::MutexLock lock(mutex_);
    return std::move(set_);
  }

 private:
  std::size_t k_;
  mutable util::Mutex mutex_;
  /// full noise vector -> mis_label
  std::map<std::vector<int>, int> set_ FANNET_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> version_{0};
};

struct Search {
  const Query& query;
  const BnbOptions& options;
  /// Exhaustive-stream mode when set; top-K mode (via `topk`) otherwise.
  const std::function<bool(const Counterexample&)>* sink = nullptr;
  TopK* topk = nullptr;

  Frontier frontier;
  std::atomic<std::uint64_t> boxes{0};
  std::atomic<bool> quit{false};
  std::atomic<bool> exhausted{false};
  std::atomic<bool> sink_stopped{false};
  util::Mutex sink_mutex;
  util::FirstError error;

  /// Deadline/cancel source (BnbOptions::budget); polled per box and every
  /// ~256 drain points.  Always non-null once the search is set up.
  const Budget* budget = nullptr;
  /// Cooperative step machinery (BnbTask only).  When `yield` is non-null,
  /// workers set it — and park at their next pop — once `boxes` reaches
  /// `step_target` or `extra_yield` fires (the task's pause flag).
  std::atomic<bool>* yield = nullptr;
  std::uint64_t step_target = 0;
  std::function<bool()> extra_yield;

  Search(const Query& q, const BnbOptions& o, std::size_t workers)
      : query(q), options(o), frontier(workers) {}
};

/// Margin slack of a box under the given (parent) margin forms: how far
/// the weakest margin lower bound sits above the flip threshold.  Negative
/// slack means the box may flip; the most negative box is the most
/// promising place to look for a witness (best-first policy).
i128 margin_slack(const MarginForms& mf, std::size_t y, const NoiseBox& box) {
  i128 slack = 0;
  bool first = true;
  for (std::size_t k = 0; k < mf.lo.size(); ++k) {
    if (k == y) continue;
    const i128 needed = (k < y) ? 1 : 0;
    const i128 s = mf.lo[k].min_over(box) - needed;
    if (first || s < slack) slack = s;
    first = false;
  }
  return slack;
}

class Worker {
 public:
  Worker(Search& s, std::size_t index)
      : s_(s), w_(index), sub_(s.query),
        y_(static_cast<std::size_t>(s.query.true_label)) {}

  void run() {
    NoiseBox box;
    while (s_.frontier.pop(w_, box, s_.quit, s_.yield)) {
      try {
        process(std::move(box));
      } catch (...) {
        s_.error.capture();
        s_.quit.store(true, std::memory_order_release);
      }
      s_.frontier.done();
      if (s_.yield != nullptr &&
          (s_.boxes.load(std::memory_order_relaxed) >= s_.step_target ||
           (s_.extra_yield && s_.extra_yield()))) {
        s_.yield->store(true, std::memory_order_release);
      }
    }
  }

 private:
  /// Delivers one verified counterexample: into the top-K set, or to the
  /// sink (serialized; a false return cancels the whole search).
  void emit(const std::vector<int>& point, int mis_label) {
    if (s_.topk != nullptr) {
      s_.topk->offer(point, mis_label);
      return;
    }
    const util::MutexLock lock(s_.sink_mutex);
    if (s_.sink_stopped.load(std::memory_order_relaxed)) return;
    if (!(*s_.sink)(make_cex(s_.query, point, mis_label))) {
      s_.sink_stopped.store(true, std::memory_order_relaxed);
      s_.quit.store(true, std::memory_order_release);
    }
  }

  /// Top-K frontier prune: true when the box cannot contain any point
  /// below the current K-th smallest counterexample.
  bool pruned_by_bound(const NoiseBox& box) {
    if (s_.topk == nullptr) return false;
    if (!s_.topk->refresh(bound_version_, bound_)) return false;
    return !(box.lo < *bound_);
  }

  /// Periodic deadline/cancel poll inside flips-everywhere drains: maps an
  /// expiry onto the exhausted path (witnesses already emitted stay
  /// valid).  Strided so the steady_clock read is amortized.
  bool drain_interrupted() {
    if ((++poll_ & 255u) != 0) return false;
    if (!s_.budget->interrupted()) return false;
    s_.exhausted.store(true, std::memory_order_relaxed);
    s_.quit.store(true, std::memory_order_release);
    return true;
  }

  void process(NoiseBox box) {
    const std::uint64_t seen =
        s_.boxes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (seen > s_.options.max_boxes || s_.budget->interrupted()) {
      s_.exhausted.store(true, std::memory_order_relaxed);
      s_.quit.store(true, std::memory_order_release);
      return;
    }
    if (pruned_by_bound(box)) return;

    if (box.is_singleton()) {
      const int label = classify_under_noise(sub_, box.lo);
      if (label != s_.query.true_label) emit(box.lo, label);
      return;
    }

    // Bound the whole box: certified-safe boxes are dropped, certified
    // flip-everywhere boxes enumerate their (all-counterexample) points in
    // lex order, undecided boxes bisect.
    bool flips_everywhere = false;
    bool all_safe = false;
    MarginForms mf;
    sub_.box = box;
    if (s_.options.use_symbolic) {
      mf = margin_forms(sub_);
      all_safe = true;
      for (std::size_t k = 0; k < mf.lo.size(); ++k) {
        if (k == y_) continue;
        const i128 needed = (k < y_) ? 1 : 0;
        if (mf.lo[k].min_over(box) < needed) all_safe = false;
        if (mf.hi[k].max_over(box) < needed) {  // O_k beats O_y everywhere
          flips_everywhere = true;
          break;
        }
      }
    } else {
      all_safe = interval_verify(sub_).verdict == Verdict::kRobust;
    }
    if (all_safe && !flips_everywhere) return;

    if (flips_everywhere) {
      const std::size_t lanes =
          nn::BatchEvaluator::resolve_batch(s_.options.batch);
      if (lanes > 1) {
        drain_flips_box_batched(box, lanes);
        return;
      }
      for_each_lex(box, [&](const std::vector<int>& point) {
        if (s_.quit.load(std::memory_order_acquire)) return false;
        if (drain_interrupted()) return false;
        // Lex order: once the top-K bound is reached, no later point in
        // this box can enter the set.
        if (s_.topk != nullptr && s_.topk->refresh(bound_version_, bound_) &&
            !(point < *bound_)) {
          return false;
        }
        emit(point, classify_under_noise(sub_, point));
        return true;
      });
      return;
    }

    // Bisect the longest edge.
    std::size_t dim = 0;
    int best_span = -1;
    for (std::size_t d = 0; d < box.dims(); ++d) {
      const int span = box.hi[d] - box.lo[d];
      if (span > best_span) {
        best_span = span;
        dim = d;
      }
    }
    const int mid = box.lo[dim] + (box.hi[dim] - box.lo[dim]) / 2;
    NoiseBox left = box, right = box;
    left.hi[dim] = mid;
    right.lo[dim] = mid + 1;

    // Box-priority policy: the child pushed *last* is popped first.
    bool left_first = true;
    if (s_.options.policy == BnbOptions::Policy::kBestFirst &&
        s_.options.use_symbolic) {
      // Parent forms stay sound on sub-boxes, so scoring is O(dims) per
      // margin — no re-propagation.  Ties keep the depth-first order.
      left_first = margin_slack(mf, y_, left) <= margin_slack(mf, y_, right);
    }
    if (left_first) {
      s_.frontier.push(w_, std::move(right));
      s_.frontier.push(w_, std::move(left));
    } else {
      s_.frontier.push(w_, std::move(left));
      s_.frontier.push(w_, std::move(right));
    }
  }

  /// Batched flips-everywhere drain: stages chunks of the box's lex-order
  /// points through the SoA kernel, then replays them in order with the
  /// same quit / top-K-bound checks (and the same emissions) as the scalar
  /// loop.  Lanes the kernel flags as overflowing re-run the scalar path,
  /// which throws the genuine ArithmeticError the scalar loop would.
  void drain_flips_box_batched(const NoiseBox& box, std::size_t lanes) {
    if (!evaluator_) {
      evaluator_.emplace(*s_.query.net);
      batch_.emplace(evaluator_->make_batch());
    }
    const std::size_t n = s_.query.x.size();
    std::vector<int> p(box.lo);
    bool done = false;
    while (!done) {
      batch_->clear();
      points_.clear();
      while (points_.size() < lanes && !done) {
        const int bias_delta = s_.query.bias_node ? p[n] : 0;
        batch_->push_noised(s_.query.x, std::span<const int>(p).subspan(0, n),
                            nn::kNoiseDen + bias_delta);
        points_.push_back(p);
        // Lex advance, last dimension fastest (for_each_lex's order).
        std::size_t d = box.dims();
        while (d > 0) {
          if (++p[d - 1] <= box.hi[d - 1]) break;
          p[d - 1] = box.lo[d - 1];
          --d;
        }
        done = (d == 0);
      }
      evaluator_->run(*batch_);
      for (std::size_t t = 0; t < points_.size(); ++t) {
        if (s_.quit.load(std::memory_order_acquire)) return;
        if (drain_interrupted()) return;
        if (s_.topk != nullptr && s_.topk->refresh(bound_version_, bound_) &&
            !(points_[t] < *bound_)) {
          return;
        }
        const int label = batch_->overflowed(t)
                              ? classify_under_noise(sub_, points_[t])
                              : batch_->label(t);
        emit(points_[t], label);
      }
    }
  }

  Search& s_;
  std::size_t w_;
  Query sub_;  // per-worker scratch query (box rewritten per candidate)
  std::size_t y_;
  std::uint32_t poll_ = 0;  // drain_interrupted stride counter
  std::uint64_t bound_version_ = 0;
  std::optional<std::vector<int>> bound_;
  std::optional<nn::BatchEvaluator> evaluator_;  // lazy: flips drains only
  std::optional<nn::BatchEvaluator::Batch> batch_;
  std::vector<std::vector<int>> points_;
};

struct SearchOutcome {
  std::map<std::vector<int>, int> found;  // top-K mode only
  std::uint64_t boxes = 0;
  bool exhausted = false;
};

/// Runs the branch-and-bound frontier to completion (or cancellation) and
/// joins every worker.  `sink` selects exhaustive-stream mode; `top_k`
/// (with null sink) selects deterministic smallest-K collection.
SearchOutcome run_search(const Query& query, const BnbOptions& options,
                         const std::function<bool(const Counterexample&)>* sink,
                         std::size_t top_k) {
  query.validate();
  const std::size_t workers =
      options.threads != 0
          ? options.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());

  Search search(query, options, workers);
  search.budget = &options.budget;
  std::optional<TopK> topk;
  if (sink == nullptr) {
    topk.emplace(top_k);
    search.topk = &*topk;
  } else {
    search.sink = sink;
  }
  search.frontier.push(0, query.box);

  if (workers == 1) {
    Worker(search, 0).run();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&search, w] { Worker(search, w).run(); });
    }
    for (std::thread& t : pool) t.join();
  }
  search.error.rethrow_if_set();

  SearchOutcome outcome;
  if (topk.has_value()) outcome.found = topk->take();
  outcome.boxes = search.boxes.load();
  outcome.exhausted = search.exhausted.load();
  return outcome;
}

/// Decision-query result from a finished top-1 search (shared by
/// bnb_verify and the task path, so both compose identically).
[[nodiscard]] VerifyResult compose_decision(const Query& query,
                                            SearchOutcome outcome) {
  VerifyResult result;
  result.work = outcome.boxes;
  result.resource_limited = outcome.exhausted;
  if (!outcome.found.empty()) {
    // Sound even under budget exhaustion: every emitted point was exactly
    // evaluated.  Within budget this is the lex-lowest counterexample;
    // exhausted runs may return a non-minimal (still valid) witness,
    // flagged resource_limited so it is never cached as canonical.
    const auto& [point, mis_label] = *outcome.found.begin();
    result.verdict = Verdict::kVulnerable;
    result.counterexample = make_cex(query, point, mis_label);
  } else {
    result.verdict = outcome.exhausted ? Verdict::kUnknown : Verdict::kRobust;
  }
  return result;
}

/// Native resumable task: owns the Search (frontier, top-1 set, box
/// counter) across steps.  Each step re-arms the box quota, runs the
/// worker pool until the quota is hit / the frontier drains / the search
/// quits, and joins the workers — so between steps no thread is running
/// and the checkpoint is just the parked frontier.  Exploration *order*
/// is all that pausing perturbs, and the lex-lowest-witness guarantee is
/// order-independent.
class BnbTask final : public EngineTask {
 public:
  BnbTask(Query query, BnbOptions options)
      : EngineTask(options.budget),
        query_(std::move(query)),
        options_(std::move(options)) {}

 private:
  bool step_impl(std::uint64_t max_work, VerifyResult& out) override {
    if (!search_.has_value()) {
      query_.validate();
      workers_ = options_.threads != 0
                     ? options_.threads
                     : std::max<std::size_t>(
                           1, std::thread::hardware_concurrency());
      search_.emplace(query_, options_, workers_);
      topk_.emplace(1);
      search_->topk = &*topk_;
      search_->budget = &budget();
      search_->yield = &yield_;
      search_->extra_yield = [this] { return should_yield(); };
      search_->frontier.push(0, query_.box);
    }
    yield_.store(false, std::memory_order_relaxed);
    search_->step_target =
        search_->boxes.load(std::memory_order_relaxed) + max_work;

    if (workers_ == 1) {
      Worker(*search_, 0).run();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(workers_);
      for (std::size_t w = 0; w < workers_; ++w) {
        pool.emplace_back([this, w] { Worker(*search_, w).run(); });
      }
      for (std::thread& t : pool) t.join();
    }
    search_->error.rethrow_if_set();

    const bool finished = search_->quit.load(std::memory_order_acquire) ||
                          search_->frontier.drained();
    if (!finished) return false;  // parked on the step quota / a pause
    SearchOutcome outcome;
    outcome.found = topk_->take();
    outcome.boxes = search_->boxes.load();
    outcome.exhausted = search_->exhausted.load();
    out = compose_decision(query_, std::move(outcome));
    return true;
  }

  Query query_;
  BnbOptions options_;
  std::size_t workers_ = 1;
  std::optional<Search> search_;  // constructed on the first step
  std::optional<TopK> topk_;
  std::atomic<bool> yield_{false};
};

}  // namespace

std::uint64_t bnb_stream(const Query& query,
                         const std::function<bool(const Counterexample&)>& sink,
                         BnbOptions options) {
  const SearchOutcome outcome = run_search(query, options, &sink, 0);
  if (outcome.exhausted) throw ResourceLimit("bnb: box budget exceeded");
  return outcome.boxes;
}

VerifyResult bnb_verify(const Query& query, BnbOptions options) {
  return compose_decision(query, run_search(query, options, nullptr, 1));
}

std::unique_ptr<EngineTask> make_bnb_task(const Query& query,
                                          const BnbOptions& options) {
  query.validate();
  return std::make_unique<BnbTask>(query, options);
}

std::vector<Counterexample> bnb_collect(const Query& query,
                                        std::size_t max_count,
                                        BnbOptions options) {
  std::vector<Counterexample> out;
  if (max_count == 0) return out;
  const SearchOutcome outcome = run_search(query, options, nullptr, max_count);
  if (outcome.exhausted) throw ResourceLimit("bnb: box budget exceeded");
  out.reserve(outcome.found.size());
  for (const auto& [point, mis_label] : outcome.found) {
    out.push_back(make_cex(query, point, mis_label));
  }
  return out;  // std::map iteration = ascending lex order
}

}  // namespace fannet::verify
