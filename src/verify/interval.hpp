/// \file
/// \brief Interval bound propagation (IBP) — sound, incomplete, exact integers.
///
/// Propagates per-neuron [lo, hi] bounds (int128, no rounding anywhere)
/// through the quantized network for a whole noise box at once.  If the
/// output margins certify the true label it answers kRobust; otherwise
/// kUnknown (IBP loses the correlations that the symbolic engine keeps —
/// the ablation bench quantifies the difference).
#pragma once

#include "verify/query.hpp"

namespace fannet::verify {

struct IntervalBounds {
  /// Pre-activation bounds per layer, scaled as in nn::QuantizedNetwork.
  std::vector<std::vector<util::i128>> lo;
  std::vector<std::vector<util::i128>> hi;
};

/// Exact interval propagation over the query's noise box.
[[nodiscard]] IntervalBounds interval_bounds(const Query& query);

/// kRobust if the intervals certify the label over the whole box,
/// kUnknown otherwise (never kVulnerable: IBP cannot witness).
[[nodiscard]] VerifyResult interval_verify(const Query& query);

}  // namespace fannet::verify
