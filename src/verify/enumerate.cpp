#include "verify/enumerate.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "nn/batch_eval.hpp"
#include "util/error.hpp"
#include "util/sync.hpp"
#include "verify/task.hpp"

namespace fannet::verify {

namespace {

using u128 = unsigned __int128;

/// Serial chunk sizes ramp up from here to the full batch, so decision
/// queries that hit a witness in the first few points stay near-scalar.
constexpr std::size_t kRampStart = 8;

/// Box volume, or 0 if it exceeds ~2^62 (practically unenumerable; the
/// parallel splitter falls back to the serial walk there).
[[nodiscard]] std::uint64_t bounded_volume(const Query& q) {
  u128 volume = 1;
  for (std::size_t d = 0; d < q.noise_dims(); ++d) {
    const u128 side =
        static_cast<u128>(static_cast<long long>(q.box.hi[d]) - q.box.lo[d]) +
        1;
    volume *= side;
    if (volume > (static_cast<u128>(1) << 62)) return 0;
  }
  return static_cast<std::uint64_t>(volume);
}

/// Decodes a linear point index into the odometer's delta vector:
/// dimension 0 is the fastest-incrementing digit, matching the scalar
/// walk's visitation order exactly.
void decode_point(const Query& q, std::uint64_t index, std::vector<int>& delta) {
  const std::size_t dims = q.noise_dims();
  delta.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    const std::uint64_t side = static_cast<std::uint64_t>(
        static_cast<long long>(q.box.hi[d]) - q.box.lo[d] + 1);
    delta[d] = q.box.lo[d] + static_cast<int>(index % side);
    index /= side;
  }
}

/// Advances `delta` one odometer step; returns false when the walk wraps
/// (every point visited).
[[nodiscard]] bool advance(const Query& q, std::vector<int>& delta) {
  const std::size_t dims = q.noise_dims();
  std::size_t d = 0;
  while (d < dims && ++delta[d] > q.box.hi[d]) {
    delta[d] = q.box.lo[d];
    ++d;
  }
  return d != dims;
}

/// Stages one noise vector as a batch lane (the classify_under_noise
/// algebra: input deltas then the optional bias-node delta).
void stage_lane(const Query& q, std::span<const int> delta,
                nn::BatchEvaluator::Batch& batch) {
  const std::size_t n = q.x.size();
  const int bias_delta = q.bias_node ? delta[n] : 0;
  batch.push_noised(q.x, delta.subspan(0, n), nn::kNoiseDen + bias_delta);
}

/// Label of one evaluated lane, reproducing the scalar path's exception
/// for lanes the batched kernel flagged: the scalar re-run throws the
/// genuine ArithmeticError at exactly the point the scalar walk would.
[[nodiscard]] int lane_label(const Query& q,
                             const nn::BatchEvaluator::Batch& batch,
                             std::size_t lane, std::span<const int> delta) {
  if (batch.overflowed(lane)) return classify_under_noise(q, delta);
  return batch.label(lane);
}

[[nodiscard]] Counterexample make_cex(const Query& q,
                                      std::span<const int> delta, int label) {
  Counterexample cex;
  cex.deltas.assign(delta.begin(),
                    delta.begin() + static_cast<std::ptrdiff_t>(q.x.size()));
  cex.bias_delta = q.bias_node ? delta[q.x.size()] : 0;
  cex.mis_label = label;
  return cex;
}

/// The scalar reference walk — kept verbatim as the oracle the batched
/// paths are validated against (bench_batch_eval, test_batch_eval).
std::uint64_t scalar_stream(
    const Query& q, const std::function<bool(const Counterexample&)>& sink) {
  std::vector<int> delta(q.box.lo.begin(), q.box.lo.end());
  std::uint64_t visited = 0;
  while (true) {
    ++visited;
    const int label = classify_under_noise(q, delta);
    if (label != q.true_label) {
      if (!sink(make_cex(q, delta, label))) return visited;
    }
    if (!advance(q, delta)) return visited;
  }
}

/// Serial batched walk: chunks of lanes in odometer order through the SoA
/// kernel, scanned in order so sink calls, early stops, the visited count,
/// and overflow throws all match the scalar walk bit-for-bit.
std::uint64_t batched_stream(
    const Query& q, const std::function<bool(const Counterexample&)>& sink,
    std::size_t batch_lanes) {
  nn::BatchEvaluator evaluator(*q.net);
  nn::BatchEvaluator::Batch batch = evaluator.make_batch();
  std::vector<std::vector<int>> staged;
  std::vector<int> delta(q.box.lo.begin(), q.box.lo.end());
  std::uint64_t visited = 0;
  std::size_t chunk = std::min(kRampStart, batch_lanes);
  bool exhausted = false;

  while (!exhausted) {
    batch.clear();
    staged.clear();
    while (staged.size() < chunk && !exhausted) {
      stage_lane(q, delta, batch);
      staged.push_back(delta);
      exhausted = !advance(q, delta);
    }
    evaluator.run(batch);
    for (std::size_t t = 0; t < staged.size(); ++t) {
      ++visited;
      const int label = lane_label(q, batch, t, staged[t]);
      if (label != q.true_label) {
        if (!sink(make_cex(q, staged[t], label))) return visited;
      }
    }
    chunk = std::min(chunk * 2, batch_lanes);
  }
  return visited;
}

/// Parallel decision walk: the linearized box is split into fixed blocks
/// of `batch_lanes` points, claimed in ascending order off an atomic
/// cursor.  Each worker batch-evaluates its block and records its first
/// *event* (counterexample or overflow); the globally lowest event index
/// wins, and blocks past the best-so-far event block are skipped (every
/// block below it was claimed earlier, so it is fully processed before the
/// workers drain).  Verdict, witness, and work are therefore the scalar
/// walk's: work = event index + 1 on a hit, the box volume on a proof.
struct BlockEvent {
  std::uint64_t index = 0;
  int label = 0;
  bool overflow = false;
};

/// Scans linear point indices [range_start, range_end) for the lowest
/// event, fanning `batch_lanes`-point blocks across `threads` workers
/// claimed in ascending order (blocks past the best-so-far event block are
/// skipped; every block below it was claimed earlier, so it is fully
/// processed before the workers drain).  Serial when threads == 1 — same
/// blocks, same events, no spawn.  Returns nullopt when the range is
/// event-free.
[[nodiscard]] std::optional<BlockEvent> scan_range(const Query& q,
                                                   std::uint64_t range_start,
                                                   std::uint64_t range_end,
                                                   std::size_t batch_lanes,
                                                   std::size_t threads) {
  const std::uint64_t span = range_end - range_start;
  const std::uint64_t blocks = (span + batch_lanes - 1) / batch_lanes;
  std::atomic<std::uint64_t> next_block{0};
  std::atomic<std::uint64_t> best_block{~static_cast<std::uint64_t>(0)};
  util::Mutex best_mutex;
  bool have_best = false;
  BlockEvent best;
  util::FirstError error;

  const auto worker = [&] {
    try {
      nn::BatchEvaluator evaluator(*q.net);
      nn::BatchEvaluator::Batch batch = evaluator.make_batch();
      std::vector<int> delta;
      while (true) {
        const std::uint64_t blk = next_block.fetch_add(1);
        if (blk >= blocks) return;
        if (blk > best_block.load(std::memory_order_relaxed)) continue;
        const std::uint64_t start = range_start + blk * batch_lanes;
        const std::size_t count = static_cast<std::size_t>(
            std::min<std::uint64_t>(batch_lanes, range_end - start));
        batch.clear();
        decode_point(q, start, delta);
        for (std::size_t t = 0; t < count; ++t) {
          stage_lane(q, delta, batch);
          if (t + 1 < count) (void)advance(q, delta);
        }
        evaluator.run(batch);
        for (std::size_t t = 0; t < count; ++t) {
          const bool overflow = batch.overflowed(t);
          if (!overflow && batch.label(t) == q.true_label) continue;
          const util::MutexLock lock(best_mutex);
          const std::uint64_t index = start + t;
          if (!have_best || index < best.index) {
            have_best = true;
            best = {index, overflow ? 0 : batch.label(t), overflow};
            best_block.store(blk, std::memory_order_relaxed);
          }
          break;  // later lanes of this block are higher indices
        }
      }
    } catch (...) {
      error.capture();
      next_block.store(blocks);  // drain the other workers
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  error.rethrow_if_set();
  if (!have_best) return std::nullopt;
  return best;
}

/// Final result for the lowest event: decode the point, reproduce the
/// scalar walk's exception for overflow lanes (or, defensively, its label
/// if the scalar path disagrees about the overflow), and package the
/// counterexample with work = event index + 1.
[[nodiscard]] VerifyResult event_result(const Query& q, BlockEvent best) {
  std::vector<int> delta;
  decode_point(q, best.index, delta);
  if (best.overflow) best.label = classify_under_noise(q, delta);
  VerifyResult result;
  result.verdict = Verdict::kVulnerable;
  result.counterexample = make_cex(q, delta, best.label);
  result.work = best.index + 1;
  return result;
}

[[nodiscard]] VerifyResult parallel_find_first(const Query& q,
                                               std::uint64_t volume,
                                               std::size_t batch_lanes,
                                               std::size_t threads) {
  const std::optional<BlockEvent> best =
      scan_range(q, 0, volume, batch_lanes, threads);
  if (!best.has_value()) {
    VerifyResult result;
    result.verdict = Verdict::kRobust;
    result.work = volume;
    return result;
  }
  return event_result(q, *best);
}

/// Native resumable task: a linear cursor over the bounded box volume,
/// scanning `max_work` points (rounded up to whole blocks) per step
/// through `scan_range`.  Because blocks are fixed and chunks cover
/// [cursor, end) contiguously, the first event found is the globally
/// lowest one regardless of where step boundaries land — the determinism
/// contract of verify/task.hpp falls out structurally.  Practically
/// unenumerable boxes (bounded_volume() == 0) fall back to a serial
/// scalar odometer slice, which the batched paths are bit-identical to.
class EnumerateTask final : public EngineTask {
 public:
  EnumerateTask(Query query, const EnumerateOptions& options,
                const Budget& budget)
      : EngineTask(budget),
        query_(std::move(query)),
        batch_(nn::BatchEvaluator::resolve_batch(options.batch)),
        threads_(options.threads == 0
                     ? std::max<std::size_t>(
                           1, std::thread::hardware_concurrency())
                     : options.threads),
        volume_(bounded_volume(query_)) {}

 private:
  bool step_impl(std::uint64_t max_work, VerifyResult& out) override {
    if (volume_ == 0) return scalar_slice(max_work, out);
    const std::uint64_t lanes = batch_;
    const std::uint64_t blocks = (max_work + lanes - 1) / lanes;
    const std::uint64_t end = std::min(volume_, cursor_ + blocks * lanes);
    const std::uint64_t chunk_blocks = (end - cursor_ + lanes - 1) / lanes;
    const std::size_t fan = static_cast<std::size_t>(
        std::min<std::uint64_t>(threads_, chunk_blocks));
    const std::optional<BlockEvent> event =
        scan_range(query_, cursor_, end, batch_, fan);
    if (event.has_value()) {
      out = event_result(query_, *event);
      return true;
    }
    cursor_ = end;
    if (cursor_ < volume_) return false;
    out.verdict = Verdict::kRobust;
    out.counterexample.reset();
    out.work = volume_;
    return true;
  }

  /// Serial scalar odometer slice for unenumerable volumes; yields at
  /// 64-point checkpoints so pause/cancel stay prompt.
  bool scalar_slice(std::uint64_t max_work, VerifyResult& out) {
    const Query& q = query_;  // const ref so the odometer helper resolves
    if (!started_) {
      delta_.assign(q.box.lo.begin(), q.box.lo.end());
      started_ = true;
    }
    for (std::uint64_t i = 0; i < max_work; ++i) {
      ++visited_;
      const int label = classify_under_noise(q, delta_);
      if (label != q.true_label) {
        out.verdict = Verdict::kVulnerable;
        out.counterexample = make_cex(q, delta_, label);
        out.work = visited_;
        return true;
      }
      if (!advance(q, delta_)) {
        out.verdict = Verdict::kRobust;
        out.work = visited_;
        return true;
      }
      if ((i & 63u) == 63u && should_yield()) return false;
    }
    return false;
  }

  Query query_;
  std::size_t batch_;
  std::size_t threads_;
  std::uint64_t volume_;
  std::uint64_t cursor_ = 0;
  // Scalar-fallback odometer state.
  std::vector<int> delta_;
  bool started_ = false;
  std::uint64_t visited_ = 0;
};

}  // namespace

std::uint64_t enumerate_stream(
    const Query& q, const std::function<bool(const Counterexample&)>& sink,
    const EnumerateOptions& options) {
  q.validate();
  const std::size_t batch = nn::BatchEvaluator::resolve_batch(options.batch);
  if (batch == 1) return scalar_stream(q, sink);
  return batched_stream(q, sink, batch);
}

VerifyResult enumerate_find_first(const Query& query,
                                  const EnumerateOptions& options) {
  query.validate();
  const std::size_t batch = nn::BatchEvaluator::resolve_batch(options.batch);
  std::size_t threads = options.threads == 0
                            ? std::max(1u, std::thread::hardware_concurrency())
                            : options.threads;
  if (batch > 1 && threads > 1) {
    const std::uint64_t volume = bounded_volume(query);
    // Only fan out when there are enough blocks to go around; tiny boxes
    // (and practically-unenumerable ones) use the serial walk.
    if (volume > 0 && volume / batch >= 2 * threads) {
      return parallel_find_first(query, volume, batch, threads);
    }
  }
  VerifyResult result;
  result.verdict = Verdict::kRobust;
  result.work = enumerate_stream(query,
                                 [&](const Counterexample& cex) {
                                   result.verdict = Verdict::kVulnerable;
                                   result.counterexample = cex;
                                   return false;  // stop at first
                                 },
                                 options);
  return result;
}

std::unique_ptr<EngineTask> make_enumerate_task(const Query& query,
                                                const EnumerateOptions& options,
                                                const Budget& budget) {
  query.validate();
  return std::make_unique<EnumerateTask>(query, options, budget);
}

std::vector<Counterexample> enumerate_collect(const Query& query,
                                              std::size_t max_count,
                                              const EnumerateOptions& options) {
  std::vector<Counterexample> out;
  if (max_count == 0) return out;  // cap checked before push, not after
  enumerate_stream(query,
                   [&](const Counterexample& cex) {
                     out.push_back(cex);
                     return out.size() < max_count;
                   },
                   options);
  return out;
}

}  // namespace fannet::verify
