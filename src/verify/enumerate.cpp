#include "verify/enumerate.hpp"

#include "util/error.hpp"

namespace fannet::verify {

std::uint64_t enumerate_stream(
    const Query& q, const std::function<bool(const Counterexample&)>& sink) {
  q.validate();
  const std::size_t dims = q.noise_dims();
  std::vector<int> delta(q.box.lo.begin(), q.box.lo.end());
  std::uint64_t visited = 0;

  while (true) {
    ++visited;
    const int label = classify_under_noise(q, delta);
    if (label != q.true_label) {
      Counterexample cex;
      cex.deltas.assign(delta.begin(), delta.begin() + static_cast<std::ptrdiff_t>(q.x.size()));
      cex.bias_delta = q.bias_node ? delta[q.x.size()] : 0;
      cex.mis_label = label;
      if (!sink(cex)) return visited;
    }
    // Odometer.
    std::size_t d = 0;
    while (d < dims && ++delta[d] > q.box.hi[d]) {
      delta[d] = q.box.lo[d];
      ++d;
    }
    if (d == dims) return visited;
  }
}

VerifyResult enumerate_find_first(const Query& query) {
  VerifyResult result;
  result.verdict = Verdict::kRobust;
  result.work = enumerate_stream(query, [&](const Counterexample& cex) {
    result.verdict = Verdict::kVulnerable;
    result.counterexample = cex;
    return false;  // stop at first
  });
  return result;
}

std::vector<Counterexample> enumerate_collect(const Query& query,
                                              std::size_t max_count) {
  std::vector<Counterexample> out;
  if (max_count == 0) return out;  // cap checked before push, not after
  enumerate_stream(query, [&](const Counterexample& cex) {
    out.push_back(cex);
    return out.size() < max_count;
  });
  return out;
}

}  // namespace fannet::verify
