/// \file
/// \brief Complete branch-and-bound over the integer noise box, parallelized with
/// a work-stealing shared frontier.
///
/// Longest-edge bisection with symbolic-bound pruning; singleton boxes are
/// evaluated exactly, so on the integer noise grid this is a *decision
/// procedure* (sound and complete, DESIGN.md §4.4) while typically visiting
/// orders of magnitude fewer points than enumeration.  The streaming variant
/// implements the paper's P3 adversarial-noise-vector extraction loop —
/// boxes that provably contain no counterexample are skipped wholesale.
///
/// Parallel execution (`BnbOptions::threads`) fans the box frontier across
/// per-worker deques: owners pop depth-first from their own back, idle
/// workers steal the oldest half of a victim's deque (the shallow boxes,
/// which split into the most further work).  Results stay deterministic for
/// any thread count:
///
///   - `bnb_verify` returns the *lexicographically lowest* counterexample
///     in the box (full noise vector: input deltas, then the bias delta) —
///     a pure function of the query, independent of exploration order — by
///     continuing the search with every box at-or-above the best witness
///     pruned, mirroring the lowest-index-witness guarantee of
///     `Scheduler::run_until_witness`;
///   - `bnb_collect` returns the `max_count` lexicographically smallest
///     counterexamples in ascending order, via the same bound generalized
///     to a top-K frontier prune;
///   - `bnb_stream` delivers the complete counterexample set (sink calls
///     are serialized; delivery *order* is unspecified beyond the
///     single-worker case, but the delivered set is the whole box's).
///
/// `VerifyResult::work` (boxes processed) is bit-deterministic only for
/// serial runs: with multiple workers the frontier prune depends on when
/// the best-so-far witness lands, so the box count — never the verdict or
/// the witness — varies run to run.  One carve-out: the guarantees above
/// hold for searches that complete within `max_boxes`.  Because the box
/// *count* is scheduling-dependent under multiple workers, a budget within
/// ~a tree-size of the actual tree can be exhausted in one run and not in
/// another, and an exhausted result (flagged `resource_limited`) is
/// kUnknown or a possibly-non-minimal witness.  Size budgets as a
/// runaway backstop (the default is 100M boxes), not as a tight cap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "verify/budget.hpp"
#include "verify/query.hpp"

namespace fannet::verify {

class EngineTask;

struct BnbOptions {
  std::uint64_t max_boxes = 100'000'000;  ///< box budget (see bnb_verify)
  bool use_symbolic = true;   ///< false = prune with plain IBP (ablation)
  /// Intra-query worker count: 1 = serial (default), 0 = one worker per
  /// hardware thread.  Verdicts and witnesses are identical for any value.
  std::size_t threads = 1;
  /// Box-priority policy: which child of a bisection is explored first.
  ///   kDepthFirst  lower half first (the classic DFS order);
  ///   kBestFirst   the child with the smallest symbolic margin slack —
  ///                the one closest to flipping — first, so witnesses (and
  ///                with them the frontier prune) land sooner on
  ///                vulnerable queries.  Requires use_symbolic; falls back
  ///                to depth-first under plain IBP.
  enum class Policy : std::uint8_t { kDepthFirst, kBestFirst };
  Policy policy = Policy::kDepthFirst;
  /// SoA evaluation lanes used when a certified flips-everywhere region
  /// drains its points (DESIGN.md §10): 0 = auto
  /// (nn::BatchEvaluator::kAutoBatch), 1 = the scalar reference path.
  /// Singleton boxes always evaluate scalar (one point at a time cannot
  /// batch).  Verdicts, witnesses and emitted sets are identical for every
  /// value.
  std::size_t batch = 0;
  /// Unified resource budget (verify/budget.hpp).  A wall-clock deadline
  /// or cancellation maps onto the exhausted path: the search stops at the
  /// next box boundary (or mid-drain, every ~256 points) and the result is
  /// kUnknown + `resource_limited` — or a valid witness already in hand,
  /// also flagged.  `budget.max_boxes` is mapped onto `max_boxes` by the
  /// engine adapter; deadline/cancel are polled here directly.
  Budget budget = {};
};

/// Decision query: the lexicographically-lowest counterexample or proof of
/// robustness.  Exhausting `max_boxes` never throws here: the result is
/// kUnknown (with `work` = boxes processed) so schedulers and cascades
/// degrade gracefully — or kVulnerable when a (verified, possibly not
/// lex-minimal) witness was already in hand when the budget ran out.
[[nodiscard]] VerifyResult bnb_verify(const Query& query, BnbOptions options = {});

/// Collects the `max_count` lexicographically-smallest counterexamples, in
/// ascending order (complete up to the cap; identical for any thread
/// count).  Throws ResourceLimit if the box budget is exhausted.
[[nodiscard]] std::vector<Counterexample> bnb_collect(const Query& query,
                                                      std::size_t max_count,
                                                      BnbOptions options = {});

/// Streams every counterexample in the box to `sink` (return false to
/// stop).  Sink calls are serialized but arrive in an unspecified order
/// when `options.threads != 1`.  Returns the number of boxes processed.
/// Throws ResourceLimit if the box budget is exhausted first.
std::uint64_t bnb_stream(const Query& query,
                         const std::function<bool(const Counterexample&)>& sink,
                         BnbOptions options = {});

/// Native resumable task for the decision query (verify/task.hpp): the
/// work-stealing frontier is checkpointed between steps, each step
/// processing ~`max_work` boxes before the workers park.  Pause/resume
/// only changes worker scheduling — the lex-lowest-witness guarantee is
/// order-independent, so verdict and witness are bit-identical to
/// `bnb_verify` at any step size and thread count.
[[nodiscard]] std::unique_ptr<EngineTask> make_bnb_task(
    const Query& query, const BnbOptions& options = {});

}  // namespace fannet::verify
