// Complete branch-and-bound over the integer noise box.
//
// Longest-edge bisection with symbolic-bound pruning; singleton boxes are
// evaluated exactly, so on the integer noise grid this is a *decision
// procedure* (sound and complete, DESIGN.md §4.4) while typically visiting
// orders of magnitude fewer points than enumeration.  The streaming variant
// implements the paper's P3 adversarial-noise-vector extraction loop —
// boxes that provably contain no counterexample are skipped wholesale.
#pragma once

#include <functional>

#include "verify/query.hpp"

namespace fannet::verify {

struct BnbOptions {
  std::uint64_t max_boxes = 100'000'000;  ///< throw ResourceLimit beyond this
  bool use_symbolic = true;   ///< false = prune with plain IBP (ablation)
};

/// Decision query: first counterexample or proof of robustness.
[[nodiscard]] VerifyResult bnb_verify(const Query& query, BnbOptions options = {});

/// Collects up to `max_count` counterexamples (complete up to the cap).
[[nodiscard]] std::vector<Counterexample> bnb_collect(const Query& query,
                                                      std::size_t max_count,
                                                      BnbOptions options = {});

/// Streams every counterexample in the box to `sink` (return false to
/// stop).  Returns the number of boxes processed.
std::uint64_t bnb_stream(const Query& query,
                         const std::function<bool(const Counterexample&)>& sink,
                         BnbOptions options = {});

}  // namespace fannet::verify
