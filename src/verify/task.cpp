#include "verify/task.hpp"

#include <utility>

#include "util/error.hpp"
#include "verify/engine.hpp"

namespace fannet::verify {

TaskState EngineTask::step(std::uint64_t max_work) {
  const util::MutexLock lock(step_mutex_);
  if (state_.load(std::memory_order_acquire) == TaskState::kDone) {
    return TaskState::kDone;
  }
  const bool cancelled = interrupted();
  if (!cancelled && pause_requested_.load(std::memory_order_acquire)) {
    state_.store(TaskState::kPaused, std::memory_order_release);
    return TaskState::kPaused;
  }
  state_.store(TaskState::kRunning, std::memory_order_release);
  bool done = false;
  try {
    done = step_impl(max_work == 0 ? 1 : max_work, result_);
  } catch (...) {
    // An engine exception poisons the task: result() will refuse, the
    // exception itself propagates to the driving caller as verify() would.
    poisoned_ = true;
    state_.store(TaskState::kDone, std::memory_order_release);
    throw;
  }
  if (!done && interrupted()) {
    finalize_interrupted();
    done = true;
  }
  const TaskState next =
      done ? TaskState::kDone
           : (pause_requested_.load(std::memory_order_acquire)
                  ? TaskState::kPaused
                  : TaskState::kRunning);
  state_.store(next, std::memory_order_release);
  return next;
}

void EngineTask::finalize_interrupted() {
  // Witness-less fallback for interruption between native checkpoints:
  // sound (nothing is claimed) and flagged so it is never memoized.
  // Native tasks that hold a verified witness finalize inside step_impl
  // before this runs.
  result_.verdict = Verdict::kUnknown;
  result_.counterexample.reset();
  result_.resource_limited = true;
}

TaskState EngineTask::run(std::uint64_t step_work) {
  for (;;) {
    const TaskState s = step(step_work);
    if (s != TaskState::kRunning) return s;
  }
}

// NO_THREAD_SAFETY_ANALYSIS: result_/poisoned_ are guarded by step_mutex_
// for writers, but this read path is race-free without it — both are
// written only before state_ publishes kDone (release), and read here only
// after observing kDone (acquire).  The lock-based analysis cannot model
// that publication protocol.
const VerifyResult& EngineTask::result() const FANNET_NO_THREAD_SAFETY_ANALYSIS {
  if (state_.load(std::memory_order_acquire) != TaskState::kDone) {
    throw Error("EngineTask::result: task is not done");
  }
  if (poisoned_) {
    throw Error("EngineTask::result: task failed with an exception");
  }
  return result_;
}

namespace {

/// Default adapter: the whole blocking verify_with call as one step.
class GenericEngineTask final : public EngineTask {
 public:
  GenericEngineTask(const Engine& engine, Query query, VerifyContext context)
      : EngineTask(context.budget),
        engine_(engine),
        query_(std::move(query)),
        context_(context) {}

 private:
  bool step_impl(std::uint64_t /*max_work*/, VerifyResult& out) override {
    if (interrupted()) {
      out.verdict = Verdict::kUnknown;
      out.resource_limited = true;
      return true;
    }
    out = engine_.verify_with(query_, context_);
    return true;
  }

  const Engine& engine_;
  Query query_;
  VerifyContext context_;
};

}  // namespace

std::unique_ptr<EngineTask> make_generic_task(const Engine& engine,
                                              const Query& query,
                                              const VerifyContext& context) {
  return std::make_unique<GenericEngineTask>(engine, query, context);
}

VerifyResult run_task(const Engine& engine, const Query& query,
                      const VerifyContext& context) {
  const std::unique_ptr<EngineTask> task = engine.make_task(query, context);
  (void)task->run();
  return task->result();
}

}  // namespace fannet::verify
