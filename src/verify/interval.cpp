#include "verify/interval.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fannet::verify {

using util::i128;
using util::i64;

namespace {

/// Contribution bounds of weight * value for value in [lo, hi].
inline void accumulate(i128& acc_lo, i128& acc_hi, i64 weight, i128 lo,
                       i128 hi) {
  if (weight >= 0) {
    acc_lo += weight * lo;
    acc_hi += weight * hi;
  } else {
    acc_lo += weight * hi;
    acc_hi += weight * lo;
  }
}

}  // namespace

IntervalBounds interval_bounds(const Query& q) {
  q.validate();
  const nn::QuantizedNetwork& net = *q.net;
  const std::size_t n = q.x.size();

  // Scaled input bounds: X_i = x_i * (100 + delta_i).
  std::vector<i128> in_lo(n), in_hi(n);
  for (std::size_t i = 0; i < n; ++i) {
    const i128 a = static_cast<i128>(q.x[i]) * (nn::kNoiseDen + q.box.lo[i]);
    const i128 b = static_cast<i128>(q.x[i]) * (nn::kNoiseDen + q.box.hi[i]);
    in_lo[i] = std::min(a, b);
    in_hi[i] = std::max(a, b);
  }
  // Bias-node factor bounds (the first layer's bias multiplier).
  i128 bf_lo = nn::kNoiseDen, bf_hi = nn::kNoiseDen;
  if (q.bias_node) {
    bf_lo = nn::kNoiseDen + q.box.lo[n];
    bf_hi = nn::kNoiseDen + q.box.hi[n];
  }

  IntervalBounds out;
  std::vector<i128> act_lo = in_lo, act_hi = in_hi;
  i128 act_scale = static_cast<i128>(net.input_norm()) * nn::kNoiseDen;

  for (std::size_t li = 0; li < net.depth(); ++li) {
    const nn::QLayer& layer = net.layers()[li];
    std::vector<i128> z_lo(layer.out_dim()), z_hi(layer.out_dim());
    for (std::size_t j = 0; j < layer.out_dim(); ++j) {
      i128 lo = 0, hi = 0;
      if (li == 0) {
        // Bias input node may be noised: term = Bq * input_norm * bf.
        const i128 base = static_cast<i128>(layer.bias[j]) * net.input_norm();
        accumulate(lo, hi, 1, std::min(base * bf_lo, base * bf_hi),
                   std::max(base * bf_lo, base * bf_hi));
      } else {
        lo = hi = static_cast<i128>(layer.bias[j]) * act_scale;
      }
      const auto row = layer.weights.row(j);
      for (std::size_t i = 0; i < layer.in_dim(); ++i) {
        accumulate(lo, hi, row[i], act_lo[i], act_hi[i]);
      }
      z_lo[j] = lo;
      z_hi[j] = hi;
    }
    out.lo.push_back(z_lo);
    out.hi.push_back(z_hi);
    if (layer.relu) {
      for (auto& v : z_lo) v = std::max<i128>(0, v);
      for (auto& v : z_hi) v = std::max<i128>(0, v);
    }
    act_lo = std::move(z_lo);
    act_hi = std::move(z_hi);
    act_scale *= util::Fixed::kScale;
  }
  return out;
}

VerifyResult interval_verify(const Query& q) {
  const IntervalBounds bounds = interval_bounds(q);
  const auto& out_lo = bounds.lo.back();
  const auto& out_hi = bounds.hi.back();
  const auto y = static_cast<std::size_t>(q.true_label);

  VerifyResult result;
  result.work = 1;
  for (std::size_t k = 0; k < out_lo.size(); ++k) {
    if (k == y) continue;
    // Margin M_k = O_y - O_k; conservative lower bound loses correlation.
    const i128 margin_lb = out_lo[y] - out_hi[k];
    const i128 needed = (k < y) ? 1 : 0;  // tie resolves to the lower index
    if (margin_lb < needed) {
      result.verdict = Verdict::kUnknown;
      return result;
    }
  }
  result.verdict = Verdict::kRobust;
  return result;
}

}  // namespace fannet::verify
