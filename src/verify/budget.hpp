/// \file
/// \brief Unified resource budget for P2 engine execution (DESIGN.md §12).
///
/// Every ad-hoc limit the engines grew over time — bnb's box cap, the SAT
/// engine's conflict/propagation budgets — plus the two limits a serving
/// layer needs (a wall-clock deadline and cooperative cancellation) live in
/// one `Budget` value threaded scheduler → engines → sat::Solver.  The
/// contract is the paper's: exhausting any budget maps to kUnknown with
/// `VerifyResult::resource_limited` set (or a valid witness already in
/// hand, also flagged) — never a hang and never a wrong verdict.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

namespace fannet::verify {

/// Cooperative cancellation flag, shared between the requester (who calls
/// `cancel()`) and any number of engine workers polling `cancelled()`.
/// All methods are safe to call concurrently.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }
  /// Re-arms the token for reuse (e.g. a pooled BatchControl).
  void reset() noexcept { cancelled_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query resource budget.  Default-constructed = unlimited (engine
/// defaults apply).  A zero cap means "engine default", matching the old
/// per-field conventions it replaces.
struct Budget {
  /// Absolute wall-clock deadline (steady clock).  Armed per query by the
  /// scheduler from `SchedulerOptions::deadline_ms`; engines with native
  /// tasks poll it at checkpoint granularity, so overshoot is bounded by
  /// one checkpoint's work.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Branch-and-bound box cap (0 = the engine's default, 100M).
  std::uint64_t max_boxes = 0;
  /// Cumulative CDCL conflict cap for SAT-backed engines (0 = default).
  std::uint64_t conflicts = 0;
  /// Cumulative unit-propagation cap for SAT-backed engines (0 = default).
  std::uint64_t propagations = 0;
  /// Cooperative cancellation; not owned, may be null.  The pointed-to
  /// token must outlive every dispatch carrying this budget.
  const CancelToken* cancel = nullptr;

  [[nodiscard]] static std::chrono::steady_clock::time_point after_ms(
      std::uint64_t ms) {
    return std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  }

  /// True when the wall-clock deadline exists and has passed (the cancel
  /// token is not consulted).  This is the only clock read the verify layer
  /// performs outside util::Stopwatch — callers that need "did the deadline
  /// fire?" accounting go through here instead of reading the clock
  /// themselves, so fannet-lint can enforce time-independence everywhere
  /// else (docs/static-analysis.md).
  [[nodiscard]] bool deadline_passed() const noexcept {
    return deadline.has_value() &&
           std::chrono::steady_clock::now() >= *deadline;
  }

  /// True when the wall-clock deadline has passed or the cancel token
  /// fired — the "stop now, finalize kUnknown + resource_limited" signal
  /// engines poll between work chunks.  Checks the (cheap) token before
  /// taking a clock reading.
  [[nodiscard]] bool interrupted() const noexcept {
    if (cancel != nullptr && cancel->cancelled()) return true;
    return deadline_passed();
  }

  /// True when nothing in this budget can ever fire.
  [[nodiscard]] bool unlimited() const noexcept {
    return !deadline.has_value() && max_boxes == 0 && conflicts == 0 &&
           propagations == 0 && cancel == nullptr;
  }
};

}  // namespace fannet::verify
