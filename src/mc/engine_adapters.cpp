#include "mc/engine_adapters.hpp"

#include "core/translate.hpp"
#include "mc/bmc.hpp"
#include "mc/explicit.hpp"
#include "mc/sat_engine.hpp"

namespace fannet::mc {

using verify::Verdict;
using verify::VerifyResult;

VerifyResult ExplicitMcEngine::verify(const verify::Query& query) const {
  const core::Translation t = core::translate_sample(query);
  const ExplicitChecker checker(t.module);
  const InvariantResult r =
      checker.check_invariant(t.module.specs().front().expr);
  VerifyResult out;
  out.work = r.states_explored;
  if (r.holds) {
    out.verdict = Verdict::kRobust;
  } else {
    out.verdict = Verdict::kVulnerable;
    out.counterexample =
        core::decode_counterexample(t, query, r.counterexample.states.back());
  }
  return out;
}

VerifyResult BmcEngine::verify(const verify::Query& query) const {
  const core::Translation t = core::translate_sample(query);
  BmcChecker checker(t.module);
  // Depth 1 reaches the first s_eval state; the noise is re-chosen every
  // cycle, so deeper states add no new noise vectors.
  const BmcResult r = checker.check_invariant(t.module.specs().front().expr, 1);
  VerifyResult out;
  out.work = 1;
  if (r.verdict == sat::SolveResult::kSat) {
    out.verdict = Verdict::kVulnerable;
    out.counterexample =
        core::decode_counterexample(t, query, r.counterexample.states.back());
  } else if (r.verdict == sat::SolveResult::kUnsat) {
    out.verdict = Verdict::kRobust;
  } else {
    out.verdict = Verdict::kUnknown;
  }
  return out;
}

}  // namespace fannet::mc

namespace fannet::verify::detail {

void register_translation_engines(EngineRegistry& registry) {
  registry.add(std::make_unique<mc::ExplicitMcEngine>());
  registry.add(std::make_unique<mc::BmcEngine>());
  registry.add(std::make_unique<mc::SatEngine>());
}

}  // namespace fannet::verify::detail
