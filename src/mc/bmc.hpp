/// \file
/// \brief SAT-based bounded model checking and k-induction over SMV models.
///
/// The model is bit-blasted (mc/compile) and unrolled incrementally into one
/// CDCL solver instance; depth d asks "can a legal path of length d reach a
/// state violating the property?" under an assumption literal, so learned
/// clauses carry across depths.  k-induction upgrades bounded refutation to
/// unbounded proof for the invariants FANNet checks (P1/P2 in Fig. 2).
#pragma once

#include <cstdint>

#include "mc/explicit.hpp"  // Trace
#include "sat/types.hpp"
#include "smv/ast.hpp"

namespace fannet::mc {

struct BmcResult {
  sat::SolveResult verdict = sat::SolveResult::kUnknown;
  /// kSat means "property violated"; the witness path:
  Trace counterexample;
  int depth = -1;  ///< depth at which the violation was found (or max tried)
};

struct InductionResult {
  bool proved = false;
  bool violated = false;
  Trace counterexample;  // for violated
  int k = -1;            // inductive depth used / bound reached
};

class BmcChecker {
 public:
  explicit BmcChecker(const smv::Module& module);

  /// Searches for a counterexample to the invariant `property` on paths of
  /// length 0..max_depth.  kSat = violated (trace filled), kUnsat = holds up
  /// to the bound, kUnknown = conflict budget exhausted.
  [[nodiscard]] BmcResult check_invariant(smv::ExprId property, int max_depth,
                                          std::uint64_t conflict_limit = 0);

  /// k-induction proof attempt for the invariant (base cases via BMC plus
  /// the inductive step without uniqueness constraints — sound for proofs,
  /// may fail to converge; bounded by max_k).
  [[nodiscard]] InductionResult prove_invariant(smv::ExprId property,
                                                int max_k);

 private:
  const smv::Module& module_;
};

}  // namespace fannet::mc
