/// \file
/// \brief Model-checking backends as pluggable verify::Engine strategies.
///
/// Both adapters run the paper's original tool path: Behavior Extraction
/// (core/translate) turns the query into an SMV model, then a model checker
/// decides the INVARSPEC.  They are registered in the engine registry as
/// "explicit-mc" and "bmc" so every consumer reaches them through the same
/// seam as the exact-integer engines; the registry seeds them via
/// verify::detail::register_translation_engines (defined here, in the MC
/// layer, because the translation lives above src/verify).
#pragma once

#include "verify/engine.hpp"

namespace fannet::mc {

/// SMV translation + enumerative reachability (mc/explicit).  Complete.
class ExplicitMcEngine final : public verify::Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "explicit-mc";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] verify::VerifyResult verify(
      const verify::Query& query) const override;
};

/// SMV translation + bit-blasting + CDCL bounded model checking (mc/bmc).
/// Complete on this model class: depth 1 reaches every s_eval state.
class BmcEngine final : public verify::Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "bmc";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] verify::VerifyResult verify(
      const verify::Query& query) const override;
};

}  // namespace fannet::mc
