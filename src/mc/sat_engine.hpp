/// \file
/// \brief SAT-backed P2 decision engine ("sat" in the verify::EngineRegistry).
///
/// Bit-blasts the quantized forward pass and the argmax property to CNF
/// through the existing SMV translation + Tseitin path (core/translate ->
/// mc/compile -> circuit/tseitin) and decides the query with the CDCL solver,
/// inprocessing enabled.  A kSat answer is refined to the lexicographically
/// lowest witness (query dimension order, bias last — the same canonical
/// order the bnb engine returns) by per-dimension binary search over frozen
/// threshold literals, so verdicts *and* witnesses are bit-identical to the
/// exact-integer complete engines.  Per-query conflict/propagation budgets
/// map onto kUnknown with resource_limited set — the engine never hangs.
/// With a ProofLog attached, robust (UNSAT) verdicts carry a DRAT transcript
/// checkable by sat::check_proof.
#pragma once

#include <cstdint>

#include "sat/drat.hpp"
#include "sat/inprocess.hpp"
#include "verify/engine.hpp"

namespace fannet::mc {

struct SatVerifyOptions {
  /// Cumulative CDCL conflict budget across the decision solve and the
  /// witness-minimization solves (0 = unlimited).
  std::uint64_t conflict_budget = 2'000'000;
  /// Cumulative unit-propagation budget (0 = unlimited).
  std::uint64_t propagation_budget = 500'000'000;
  /// Inprocessing passes for the solver (default: the full suite).
  sat::InprocessOptions inprocess = sat::InprocessOptions::all();
};

/// Decides the P2 query by SAT.  When `proof` is non-null every solver
/// derivation is logged to it; for a kRobust verdict the log is a complete
/// DRAT certificate (check with sat::check_proof, no assumptions).
[[nodiscard]] verify::VerifyResult sat_verify(const verify::Query& query,
                                              const SatVerifyOptions& options,
                                              sat::ProofLog* proof = nullptr);

/// Registry adapter.  Complete: the CNF encodes the full box exactly, so
/// kUnknown arises only from the resource budget (resource_limited is set).
class SatEngine final : public verify::Engine {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "sat";
  }
  [[nodiscard]] bool complete() const noexcept override { return true; }
  [[nodiscard]] verify::VerifyResult verify(
      const verify::Query& query) const override;
  /// Honours VerifyContext::budget (conflict/propagation caps, deadline,
  /// cancellation) by driving the native task to completion.
  [[nodiscard]] verify::VerifyResult verify_with(
      const verify::Query& query,
      const verify::VerifyContext& context) const override;
  [[nodiscard]] verify::EngineCaps caps() const noexcept override {
    return verify::EngineCaps{.complete = true,
                              .deadline = true,
                              .budget = true,
                              .native_task = true};
  }
  /// Native resumable task: CNF encoding on the first step, then one CDCL
  /// probe per step (decision solve, then witness-minimization probes)
  /// under a per-step conflict quota, with pause/cancel/deadline polled
  /// inside the solver at conflict granularity.  Learnt clauses persist
  /// across steps; pause/resume never changes the verdict or the witness.
  [[nodiscard]] std::unique_ptr<verify::EngineTask> make_task(
      const verify::Query& query,
      const verify::VerifyContext& context) const override;
};

}  // namespace fannet::mc
