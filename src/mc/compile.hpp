/// \file
/// \brief SMV -> circuit compiler (bit-blasting bounded-integer models).
///
/// Every SMV variable becomes a two's-complement word sized to its declared
/// domain; expressions compile to word/bit logic; nondeterministic choices
/// ({...} sets, lo..hi ranges, unassigned variables) become fresh oracle
/// inputs constrained to their legal values.  The same step function feeds
/// both the SAT-based bounded model checker (via Tseitin) and the BDD-based
/// symbolic engine (via BddConverter) — the two backend families the paper
/// compares when motivating its choice of model checker.
#pragma once

#include <optional>
#include <vector>

#include "circuit/circuit.hpp"
#include "smv/ast.hpp"

namespace fannet::mc {

class SmvCompiler {
 public:
  explicit SmvCompiler(const smv::Module& module);

  [[nodiscard]] const smv::Module& module() const noexcept { return module_; }

  /// Word width of a variable (two's complement, covers its domain).
  [[nodiscard]] std::size_t var_width(std::size_t var) const;
  /// Sum of all variable widths (the symbolic state width).
  [[nodiscard]] std::size_t state_bits() const;

  /// Fresh circuit inputs representing one symbolic state.
  [[nodiscard]] std::vector<circuit::Word> make_state_inputs(
      circuit::Circuit& c) const;

  /// Conjunction asserting `state` is a legal initial state (init
  /// assignments — possibly via fresh choice oracles — INIT constraints,
  /// INVAR constraints and variable domains).
  [[nodiscard]] circuit::CLit init_constraint(
      circuit::Circuit& c, const std::vector<circuit::Word>& state) const;

  struct Step {
    std::vector<circuit::Word> next;  ///< one word per variable (var width)
    circuit::CLit valid;              ///< transition legality conjunction
  };
  /// One symbolic transition out of `state` (creates choice oracles).
  [[nodiscard]] Step step(circuit::Circuit& c,
                          const std::vector<circuit::Word>& state) const;

  /// Compiles a boolean expression over a state (and optional next state
  /// for TRANS constraints).
  [[nodiscard]] circuit::CLit compile_bool(
      circuit::Circuit& c, smv::ExprId id,
      const std::vector<circuit::Word>& state,
      const std::vector<circuit::Word>* next = nullptr) const;

  /// lo <= word <= hi for a variable's declared domain.
  [[nodiscard]] circuit::CLit domain_constraint(circuit::Circuit& c,
                                                std::size_t var,
                                                const circuit::Word& w) const;

 private:
  /// Compilation value: either a single bit (boolean) or a word (integer).
  struct Value {
    bool is_bool = false;
    circuit::CLit bit = circuit::kFalse;
    circuit::Word word;
  };
  struct Ctx {
    circuit::Circuit& c;
    const std::vector<circuit::Word>& state;
    const std::vector<circuit::Word>* next;
    // DEFINE bodies are DAG-shared (the NN translation reuses activations
    // heavily); cache their compiled value per invocation context.
    std::vector<std::optional<Value>> define_cache;
  };
  struct Choice {
    circuit::Word value;
    circuit::CLit constraint = circuit::kTrue;
  };

  [[nodiscard]] Value compile(Ctx& ctx, smv::ExprId id) const;
  [[nodiscard]] circuit::Word as_word(Ctx& ctx, const Value& v) const;
  [[nodiscard]] circuit::CLit as_bool(Ctx& ctx, const Value& v) const;
  [[nodiscard]] Choice compile_choice(Ctx& ctx, smv::ExprId id) const;
  /// Constant folding for range bounds (throws if not a constant).
  [[nodiscard]] smv::i64 const_value(smv::ExprId id) const;

  const smv::Module& module_;
  std::vector<std::size_t> widths_;
};

}  // namespace fannet::mc
