#include "mc/explicit.hpp"

#include <deque>

#include "util/error.hpp"

namespace fannet::mc {

using smv::ExprId;
using smv::State;
using smv::i64;

ExplicitChecker::ExplicitChecker(const smv::Module& module,
                                 ExplicitOptions options)
    : module_(module), eval_(module), options_(options) {}

void ExplicitChecker::for_each_candidate(
    const std::vector<std::vector<i64>>& per_var,
    const std::function<void(const State&)>& sink) const {
  const std::size_t n = per_var.size();
  std::uint64_t product = 1;
  for (const auto& choices : per_var) {
    if (choices.empty()) return;  // no candidate at all
    product *= choices.size();
    if (product > options_.max_branching) {
      throw ResourceLimit(
          "ExplicitChecker: nondeterministic branching exceeds cap (" +
          std::to_string(options_.max_branching) + ")");
    }
  }
  State state(n, 0);
  std::vector<std::size_t> index(n, 0);
  for (std::size_t v = 0; v < n; ++v) state[v] = per_var[v][0];
  while (true) {
    sink(state);
    // Odometer increment.
    std::size_t v = 0;
    while (v < n && ++index[v] == per_var[v].size()) {
      index[v] = 0;
      state[v] = per_var[v][0];
      ++v;
    }
    if (v == n) return;
    state[v] = per_var[v][index[v]];
  }
}

bool ExplicitChecker::passes_invars(const State& s) const {
  for (const ExprId inv : module_.invar_constraints()) {
    if (!eval_.eval_bool(inv, s)) return false;
  }
  return true;
}

std::vector<State> ExplicitChecker::initial_states() const {
  const std::size_t n = module_.vars().size();
  std::vector<std::vector<i64>> per_var(n);
  const State zero(n, 0);  // init RHS must be closed over constants
  for (std::size_t v = 0; v < n; ++v) {
    const ExprId init = module_.init_of(v);
    per_var[v] = (init == smv::kNoExpr) ? eval_.domain(v)
                                        : eval_.choices(init, zero);
    for (const i64 value : per_var[v]) {
      if (!eval_.in_domain(v, value)) {
        throw InvalidArgument("ExplicitChecker: init(" +
                              module_.vars()[v].name +
                              ") leaves the declared domain");
      }
    }
  }
  std::vector<State> out;
  for_each_candidate(per_var, [&](const State& s) {
    for (const ExprId c : module_.init_constraints()) {
      if (!eval_.eval_bool(c, s)) return;
    }
    if (!passes_invars(s)) return;
    out.push_back(s);
  });
  return out;
}

std::vector<State> ExplicitChecker::successors(const State& state) const {
  const std::size_t n = module_.vars().size();
  std::vector<std::vector<i64>> per_var(n);
  for (std::size_t v = 0; v < n; ++v) {
    const ExprId next = module_.next_of(v);
    per_var[v] = (next == smv::kNoExpr) ? eval_.domain(v)
                                        : eval_.choices(next, state);
    for (const i64 value : per_var[v]) {
      if (!eval_.in_domain(v, value)) {
        throw InvalidArgument("ExplicitChecker: next(" +
                              module_.vars()[v].name +
                              ") leaves the declared domain");
      }
    }
  }
  std::vector<State> out;
  const bool has_trans = !module_.trans_constraints().empty();
  for_each_candidate(per_var, [&](const State& s) {
    if (has_trans) {
      for (const ExprId c : module_.trans_constraints()) {
        if (!eval_.eval_bool(c, state, &s)) return;
      }
    }
    if (!passes_invars(s)) return;
    out.push_back(s);
  });
  // Deduplicate (different choice tuples can coincide on the same state).
  std::unordered_map<State, char, StateHash> seen;
  std::vector<State> dedup;
  dedup.reserve(out.size());
  for (auto& s : out) {
    if (seen.emplace(s, 1).second) dedup.push_back(std::move(s));
  }
  return dedup;
}

ReachabilityStats ExplicitChecker::explore() const {
  ReachabilityStats stats;
  std::unordered_map<State, std::uint32_t, StateHash> ids;
  std::deque<State> frontier;
  for (State& s : initial_states()) {
    if (ids.emplace(s, static_cast<std::uint32_t>(ids.size())).second) {
      frontier.push_back(std::move(s));
    }
  }
  stats.num_initial = ids.size();
  while (!frontier.empty()) {
    const State s = std::move(frontier.front());
    frontier.pop_front();
    for (State& t : successors(s)) {
      ++stats.num_transitions;
      if (ids.emplace(t, static_cast<std::uint32_t>(ids.size())).second) {
        if (ids.size() > options_.max_states) {
          throw ResourceLimit("ExplicitChecker::explore: state cap exceeded");
        }
        frontier.push_back(std::move(t));
      }
    }
  }
  stats.num_states = ids.size();
  return stats;
}

InvariantResult ExplicitChecker::check_invariant(ExprId property) const {
  InvariantResult result;
  std::unordered_map<State, std::uint32_t, StateHash> ids;
  std::vector<std::uint32_t> parent;  // by state id; self = initial
  std::vector<State> by_id;
  std::deque<std::uint32_t> frontier;

  const auto build_trace = [&](std::uint32_t id) {
    std::vector<State> rev;
    while (true) {
      rev.push_back(by_id[id]);
      if (parent[id] == id) break;
      id = parent[id];
    }
    Trace t;
    t.states.assign(rev.rbegin(), rev.rend());
    return t;
  };

  for (State& s : initial_states()) {
    const auto [it, fresh] =
        ids.emplace(std::move(s), static_cast<std::uint32_t>(ids.size()));
    if (!fresh) continue;
    by_id.push_back(it->first);
    parent.push_back(it->second);
    if (!eval_.eval_bool(property, it->first)) {
      result.holds = false;
      result.counterexample = build_trace(it->second);
      result.states_explored = ids.size();
      return result;
    }
    frontier.push_back(it->second);
  }

  while (!frontier.empty()) {
    const std::uint32_t sid = frontier.front();
    frontier.pop_front();
    const State s = by_id[sid];  // copy: by_id may reallocate below
    for (State& t : successors(s)) {
      const auto [it, fresh] =
          ids.emplace(std::move(t), static_cast<std::uint32_t>(ids.size()));
      if (!fresh) continue;
      if (ids.size() > options_.max_states) {
        throw ResourceLimit("ExplicitChecker::check_invariant: state cap");
      }
      by_id.push_back(it->first);
      parent.push_back(sid);
      if (!eval_.eval_bool(property, it->first)) {
        result.holds = false;
        result.counterexample = build_trace(it->second);
        result.states_explored = ids.size();
        return result;
      }
      frontier.push_back(it->second);
    }
  }
  result.holds = true;
  result.states_explored = ids.size();
  return result;
}

}  // namespace fannet::mc
