#include "mc/bmc.hpp"

#include <array>

#include "circuit/tseitin.hpp"
#include "mc/compile.hpp"
#include "sat/solver.hpp"
#include "util/error.hpp"

namespace fannet::mc {

using circuit::Circuit;
using circuit::CLit;
using circuit::TseitinEncoder;
using circuit::Word;

BmcChecker::BmcChecker(const smv::Module& module) : module_(module) {}

namespace {

/// Decodes the unrolled state words into an explicit trace.
Trace decode_trace(const TseitinEncoder& enc,
                   const std::vector<std::vector<Word>>& steps,
                   int depth) {
  Trace t;
  for (int d = 0; d <= depth; ++d) {
    smv::State s;
    s.reserve(steps[static_cast<std::size_t>(d)].size());
    for (const Word& w : steps[static_cast<std::size_t>(d)]) {
      s.push_back(enc.decode_word(w));
    }
    t.states.push_back(std::move(s));
  }
  return t;
}

}  // namespace

BmcResult BmcChecker::check_invariant(smv::ExprId property, int max_depth,
                                      std::uint64_t conflict_limit) {
  SmvCompiler compiler(module_);
  Circuit c;
  sat::Solver solver;
  solver.set_conflict_limit(conflict_limit);
  TseitinEncoder enc(c, solver);

  std::vector<std::vector<Word>> steps;
  steps.push_back(compiler.make_state_inputs(c));
  enc.assert_true(compiler.init_constraint(c, steps[0]));

  BmcResult result;
  for (int depth = 0; depth <= max_depth; ++depth) {
    // Pre-encode state bits so a model can be decoded afterwards.
    for (const Word& w : steps.back()) (void)enc.lits(w);
    const CLit bad = ~compiler.compile_bool(c, property, steps.back());
    const sat::Lit bad_lit = enc.lit(bad);
    const sat::SolveResult r = solver.solve(std::array{bad_lit});
    if (r == sat::SolveResult::kSat) {
      result.verdict = sat::SolveResult::kSat;
      result.depth = depth;
      result.counterexample = decode_trace(enc, steps, depth);
      return result;
    }
    if (r == sat::SolveResult::kUnknown) {
      result.verdict = sat::SolveResult::kUnknown;
      result.depth = depth;
      return result;
    }
    // Property holds at this depth on every path: fix it and deepen.
    solver.add_clause({~bad_lit});
    if (depth == max_depth) break;
    const SmvCompiler::Step s = compiler.step(c, steps.back());
    enc.assert_true(s.valid);
    steps.push_back(s.next);
  }
  result.verdict = sat::SolveResult::kUnsat;
  result.depth = max_depth;
  return result;
}

InductionResult BmcChecker::prove_invariant(smv::ExprId property, int max_k) {
  InductionResult out;
  for (int k = 1; k <= max_k; ++k) {
    // Base case: no violation on paths of length < k from an initial state.
    BmcResult base = check_invariant(property, k - 1);
    if (base.verdict == sat::SolveResult::kSat) {
      out.violated = true;
      out.counterexample = std::move(base.counterexample);
      out.k = base.depth;
      return out;
    }
    if (base.verdict == sat::SolveResult::kUnknown) {
      out.k = k;
      return out;
    }
    // Inductive step: from any legal state satisfying the property for k
    // consecutive steps, the property holds at step k.
    SmvCompiler compiler(module_);
    Circuit c;
    sat::Solver solver;
    circuit::TseitinEncoder enc(c, solver);
    std::vector<Word> state = compiler.make_state_inputs(c);
    // Arbitrary legal state: domains + INVAR only (no init).
    CLit legal = circuit::kTrue;
    for (std::size_t v = 0; v < module_.vars().size(); ++v) {
      legal = c.land(legal, compiler.domain_constraint(c, v, state[v]));
    }
    for (const smv::ExprId e : module_.invar_constraints()) {
      legal = c.land(legal, compiler.compile_bool(c, e, state));
    }
    enc.assert_true(legal);
    for (int d = 0; d < k; ++d) {
      enc.assert_true(compiler.compile_bool(c, property, state));
      const SmvCompiler::Step s = compiler.step(c, state);
      enc.assert_true(s.valid);
      state = s.next;
    }
    enc.assert_true(~compiler.compile_bool(c, property, state));
    if (solver.solve() == sat::SolveResult::kUnsat) {
      out.proved = true;
      out.k = k;
      return out;
    }
  }
  out.k = max_k;
  return out;
}

}  // namespace fannet::mc
