/// \file
/// \brief BDD-based symbolic model checking over SMV models.
///
/// Builds a monolithic transition-relation BDD from the bit-blasted step
/// function (current/next state bits interleaved in the variable order,
/// choice oracles quantified out) and runs an image-computation fixpoint.
/// This is the PSPACE-style engine the paper weighs against SAT-based model
/// checking; the ablation bench measures exactly the blow-up that made the
/// authors pick an SMT-based tool.
#pragma once

#include <optional>

#include "mc/explicit.hpp"  // smv::State
#include "smv/ast.hpp"

namespace fannet::mc {

struct BddCheckResult {
  bool holds = false;
  std::optional<smv::State> violating_state;  // one witness if !holds
  double reachable_states = 0.0;              // BDD sat-count over state bits
  int fixpoint_iterations = 0;
  std::size_t peak_nodes = 0;                 // manager size after the run
};

struct BddOptions {
  /// Abort with ResourceLimit if the manager grows beyond this many nodes.
  std::size_t max_nodes = 20'000'000;
};

class BddChecker {
 public:
  explicit BddChecker(const smv::Module& module, BddOptions options = {});

  /// Invariant check by symbolic reachability.
  [[nodiscard]] BddCheckResult check_invariant(smv::ExprId property) const;

  /// Reachable-state count only (property-free exploration).
  [[nodiscard]] BddCheckResult reachable_states() const;

 private:
  [[nodiscard]] BddCheckResult run(std::optional<smv::ExprId> property) const;

  const smv::Module& module_;
  BddOptions options_;
};

}  // namespace fannet::mc
