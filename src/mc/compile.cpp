#include "mc/compile.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace fannet::mc {

using circuit::Circuit;
using circuit::CLit;
using circuit::Word;
using smv::Expr;
using smv::ExprId;
using smv::Op;
using smv::i64;

SmvCompiler::SmvCompiler(const smv::Module& module) : module_(module) {
  widths_.reserve(module.vars().size());
  for (std::size_t v = 0; v < module.vars().size(); ++v) {
    const std::size_t w = std::max(Circuit::min_width(module.domain_lo(v)),
                                   Circuit::min_width(module.domain_hi(v)));
    widths_.push_back(w);
  }
}

std::size_t SmvCompiler::var_width(std::size_t var) const {
  return widths_.at(var);
}

std::size_t SmvCompiler::state_bits() const {
  std::size_t total = 0;
  for (const std::size_t w : widths_) total += w;
  return total;
}

std::vector<Word> SmvCompiler::make_state_inputs(Circuit& c) const {
  std::vector<Word> state;
  state.reserve(widths_.size());
  for (const std::size_t w : widths_) state.push_back(c.add_input_word(w));
  return state;
}

CLit SmvCompiler::domain_constraint(Circuit& c, std::size_t var,
                                    const Word& w) const {
  const Word lo = Circuit::word_const(module_.domain_lo(var),
                                      Circuit::min_width(module_.domain_lo(var)));
  const Word hi = Circuit::word_const(module_.domain_hi(var),
                                      Circuit::min_width(module_.domain_hi(var)));
  return c.land(c.leq_signed(lo, w), c.leq_signed(w, hi));
}

i64 SmvCompiler::const_value(ExprId id) const {
  const Expr& e = module_.expr(id);
  switch (e.op) {
    case Op::kConst:
      return e.value;
    case Op::kNeg:
      return util::checked_sub(0, const_value(e.kids[0]));
    case Op::kAdd:
      return util::checked_add(const_value(e.kids[0]), const_value(e.kids[1]));
    case Op::kSub:
      return util::checked_sub(const_value(e.kids[0]), const_value(e.kids[1]));
    case Op::kMul:
      return util::checked_mul(const_value(e.kids[0]), const_value(e.kids[1]));
    default:
      throw InvalidArgument(
          "SmvCompiler: range bounds must be compile-time constants");
  }
}

SmvCompiler::Value SmvCompiler::compile(Ctx& ctx, ExprId id) const {
  const Expr& e = module_.expr(id);
  Circuit& c = ctx.c;
  const auto word_of = [&](ExprId k) { return as_word(ctx, compile(ctx, k)); };
  const auto bool_of = [&](ExprId k) { return as_bool(ctx, compile(ctx, k)); };
  const auto make_bool = [](CLit b) {
    Value v;
    v.is_bool = true;
    v.bit = b;
    return v;
  };
  const auto make_word = [](Word w) {
    Value v;
    v.word = std::move(w);
    return v;
  };

  switch (e.op) {
    case Op::kConst:
      return make_word(Circuit::word_const(e.value, Circuit::min_width(e.value)));
    case Op::kVarRef:
      return make_word(ctx.state.at(static_cast<std::size_t>(e.value)));
    case Op::kNextRef:
      if (ctx.next == nullptr) {
        throw InvalidArgument("SmvCompiler: next(...) outside TRANS context");
      }
      return make_word(ctx.next->at(static_cast<std::size_t>(e.value)));
    case Op::kDefRef: {
      const auto idx = static_cast<std::size_t>(e.value);
      if (ctx.define_cache.size() <= idx) ctx.define_cache.resize(idx + 1);
      if (!ctx.define_cache[idx].has_value()) {
        ctx.define_cache[idx] =
            compile(ctx, module_.defines()[idx].second);
      }
      return *ctx.define_cache[idx];
    }
    case Op::kNeg:
      return make_word(c.neg(word_of(e.kids[0])));
    case Op::kNot:
      return make_bool(~bool_of(e.kids[0]));
    case Op::kAdd:
      return make_word(c.add(word_of(e.kids[0]), word_of(e.kids[1])));
    case Op::kSub:
      return make_word(c.sub(word_of(e.kids[0]), word_of(e.kids[1])));
    case Op::kMul: {
      // One side must be constant (linear models only — the NN encoding
      // multiplies by weights, never variable*variable).
      const Expr& lhs = module_.expr(e.kids[0]);
      const Expr& rhs = module_.expr(e.kids[1]);
      if (lhs.op == Op::kConst) {
        return make_word(c.mul_const(word_of(e.kids[1]), lhs.value));
      }
      if (rhs.op == Op::kConst) {
        return make_word(c.mul_const(word_of(e.kids[0]), rhs.value));
      }
      throw InvalidArgument(
          "SmvCompiler: '*' requires one constant operand (linear encoding)");
    }
    case Op::kEq: case Op::kNe: {
      // Boolean = boolean comparison degenerates to iff.
      const Value a = compile(ctx, e.kids[0]);
      const Value b = compile(ctx, e.kids[1]);
      CLit eq;
      if (a.is_bool && b.is_bool) {
        eq = c.iff(a.bit, b.bit);
      } else {
        eq = c.eq(as_word(ctx, a), as_word(ctx, b));
      }
      return make_bool(e.op == Op::kEq ? eq : ~eq);
    }
    case Op::kLt:
      return make_bool(c.less_signed(word_of(e.kids[0]), word_of(e.kids[1])));
    case Op::kLe:
      return make_bool(c.leq_signed(word_of(e.kids[0]), word_of(e.kids[1])));
    case Op::kGt:
      return make_bool(c.less_signed(word_of(e.kids[1]), word_of(e.kids[0])));
    case Op::kGe:
      return make_bool(c.leq_signed(word_of(e.kids[1]), word_of(e.kids[0])));
    case Op::kAnd:
      return make_bool(c.land(bool_of(e.kids[0]), bool_of(e.kids[1])));
    case Op::kOr:
      return make_bool(c.lor(bool_of(e.kids[0]), bool_of(e.kids[1])));
    case Op::kXor:
      return make_bool(c.lxor(bool_of(e.kids[0]), bool_of(e.kids[1])));
    case Op::kImplies:
      return make_bool(c.implies(bool_of(e.kids[0]), bool_of(e.kids[1])));
    case Op::kIff:
      return make_bool(c.iff(bool_of(e.kids[0]), bool_of(e.kids[1])));
    case Op::kCase: {
      // Build the mux chain back-to-front; the final else is an arbitrary
      // zero with an unmatched-case obligation folded into conditions (we
      // require a TRUE default arm, as the evaluator does).
      Value result = make_word(Circuit::word_const(0, 1));
      bool first = true;
      for (std::size_t i = e.kids.size(); i >= 2; i -= 2) {
        const CLit cond = bool_of(e.kids[i - 2]);
        const Value arm = compile(ctx, e.kids[i - 1]);
        if (first) {
          result = arm;
          first = false;
          continue;
        }
        if (arm.is_bool && result.is_bool) {
          result = make_bool(c.mux(cond, arm.bit, result.bit));
        } else {
          result = make_word(
              c.mux_word(cond, as_word(ctx, arm), as_word(ctx, result)));
        }
      }
      return result;
    }
    case Op::kName:
      throw InvalidArgument("SmvCompiler: unresolved name '" + e.name + "'");
    case Op::kSet:
    case Op::kRange:
      throw InvalidArgument(
          "SmvCompiler: set/range only allowed in init()/next() right-hand "
          "sides");
  }
  throw InvalidArgument("SmvCompiler: corrupt expression node");
}

Word SmvCompiler::as_word(Ctx& ctx, const Value& v) const {
  if (!v.is_bool) return v.word;
  // false -> 0, true -> 1: two bits so the value stays non-negative.
  Word w(2, circuit::kFalse);
  w[0] = v.bit;
  (void)ctx;
  return w;
}

CLit SmvCompiler::as_bool(Ctx& ctx, const Value& v) const {
  if (v.is_bool) return v.bit;
  // Integer used as boolean: nonzero means true (matches the evaluator).
  return ~ctx.c.eq(v.word, Circuit::word_const(0, 1));
}

SmvCompiler::Choice SmvCompiler::compile_choice(Ctx& ctx, ExprId id) const {
  const Expr& e = module_.expr(id);
  Circuit& c = ctx.c;
  switch (e.op) {
    case Op::kSet: {
      const std::size_t n = e.kids.size();
      std::vector<Choice> alts;
      alts.reserve(n);
      for (const ExprId kid : e.kids) alts.push_back(compile_choice(ctx, kid));
      // Selector oracle: non-negative word with ceil(log2(n)) value bits.
      std::size_t sel_bits = 1;
      while ((std::size_t{1} << sel_bits) < n) ++sel_bits;
      Word sel = c.add_input_word(sel_bits + 1);  // +1 keeps it non-negative-capable
      CLit in_range = c.land(
          c.leq_signed(Circuit::word_const(0, 1), sel),
          c.less_signed(sel, Circuit::word_const(static_cast<i64>(n),
                                                 Circuit::min_width(static_cast<i64>(n)))));
      Choice out;
      out.value = alts.back().value;
      CLit chosen_constraint = alts.back().constraint;
      for (std::size_t i = n - 1; i-- > 0;) {
        const CLit is_i = c.eq(sel, Circuit::word_const(static_cast<i64>(i),
                                                        Circuit::min_width(static_cast<i64>(i))));
        out.value = c.mux_word(is_i, alts[i].value, out.value);
        chosen_constraint = c.mux(is_i, alts[i].constraint, chosen_constraint);
      }
      out.constraint = c.land(in_range, chosen_constraint);
      return out;
    }
    case Op::kRange: {
      const i64 lo = const_value(e.kids[0]);
      const i64 hi = const_value(e.kids[1]);
      if (lo > hi) throw InvalidArgument("SmvCompiler: empty range");
      const std::size_t w =
          std::max(Circuit::min_width(lo), Circuit::min_width(hi));
      Choice out;
      out.value = ctx.c.add_input_word(w);
      out.constraint =
          c.land(c.leq_signed(Circuit::word_const(lo, Circuit::min_width(lo)),
                              out.value),
                 c.leq_signed(out.value,
                              Circuit::word_const(hi, Circuit::min_width(hi))));
      return out;
    }
    case Op::kCase: {
      Choice result;
      result.value = Circuit::word_const(0, 1);
      result.constraint = circuit::kFalse;  // unmatched case: no transition
      bool first = true;
      for (std::size_t i = e.kids.size(); i >= 2; i -= 2) {
        const CLit cond = as_bool(ctx, compile(ctx, e.kids[i - 2]));
        Choice arm = compile_choice(ctx, e.kids[i - 1]);
        if (first) {
          // Last arm is the innermost else under its own condition.
          result.value = arm.value;
          result.constraint = c.land(cond, arm.constraint);
          first = false;
          continue;
        }
        result.value = c.mux_word(cond, arm.value, result.value);
        result.constraint =
            c.mux(cond, arm.constraint, result.constraint);
      }
      return result;
    }
    default: {
      Choice out;
      out.value = as_word(ctx, compile(ctx, id));
      return out;
    }
  }
}

CLit SmvCompiler::init_constraint(Circuit& c,
                                  const std::vector<Word>& state) const {
  Ctx ctx{c, state, nullptr, {}};
  CLit ok = circuit::kTrue;
  for (std::size_t v = 0; v < module_.vars().size(); ++v) {
    ok = c.land(ok, domain_constraint(c, v, state[v]));
    const ExprId init = module_.init_of(v);
    if (init == smv::kNoExpr) continue;
    const Choice ch = compile_choice(ctx, init);
    ok = c.land(ok, ch.constraint);
    ok = c.land(ok, c.eq(state[v], ch.value));
  }
  for (const ExprId e : module_.init_constraints()) {
    ok = c.land(ok, compile_bool(c, e, state));
  }
  for (const ExprId e : module_.invar_constraints()) {
    ok = c.land(ok, compile_bool(c, e, state));
  }
  return ok;
}

SmvCompiler::Step SmvCompiler::step(Circuit& c,
                                    const std::vector<Word>& state) const {
  Ctx ctx{c, state, nullptr, {}};
  Step out;
  out.valid = circuit::kTrue;
  out.next.reserve(module_.vars().size());
  for (std::size_t v = 0; v < module_.vars().size(); ++v) {
    const ExprId next = module_.next_of(v);
    Word value;
    if (next == smv::kNoExpr) {
      value = c.add_input_word(var_width(v));  // free oracle over the domain
    } else {
      Choice ch = compile_choice(ctx, next);
      out.valid = c.land(out.valid, ch.constraint);
      value = std::move(ch.value);
    }
    // Enforce the domain, then truncate to the variable's width (sound:
    // the constraint guarantees the wide value fits).
    out.valid = c.land(out.valid, domain_constraint(c, v, value));
    out.next.push_back(c.sext(value, var_width(v)));
  }
  for (const ExprId e : module_.trans_constraints()) {
    out.valid = c.land(out.valid, compile_bool(c, e, state, &out.next));
  }
  for (const ExprId e : module_.invar_constraints()) {
    out.valid = c.land(out.valid, compile_bool(c, e, out.next));
  }
  return out;
}

CLit SmvCompiler::compile_bool(Circuit& c, ExprId id,
                               const std::vector<Word>& state,
                               const std::vector<Word>* next) const {
  Ctx ctx{c, state, next, {}};
  return as_bool(ctx, compile(ctx, id));
}

}  // namespace fannet::mc
