/// \file
/// \brief Explicit-state model checking of SMV modules.
///
/// Enumerative reachability over concrete states (vectors of bounded ints).
/// This backend produces the paper's Fig.-3 numbers — reachable-state and
/// transition counts of the NN-with-noise FSM — and doubles as a second
/// oracle for INVARSPEC queries at small noise ranges.  BFS order guarantees
/// shortest counterexample traces.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "smv/ast.hpp"
#include "smv/eval.hpp"

namespace fannet::mc {

/// A finite execution: states[0] is initial.
struct Trace {
  std::vector<smv::State> states;
};

struct InvariantResult {
  bool holds = false;
  Trace counterexample;           // non-empty iff !holds
  std::uint64_t states_explored = 0;
};

struct ReachabilityStats {
  std::uint64_t num_states = 0;       // reachable states (Fig. 3 "states")
  std::uint64_t num_transitions = 0;  // distinct reachable edges (s, s')
  std::uint64_t num_initial = 0;
};

struct ExplicitOptions {
  std::uint64_t max_states = 5'000'000;
  /// Safety cap on the per-state nondeterministic branching product.
  std::uint64_t max_branching = 2'000'000;
};

class ExplicitChecker {
 public:
  explicit ExplicitChecker(const smv::Module& module,
                           ExplicitOptions options = {});

  /// All states satisfying the init assignments, INIT and INVAR constraints.
  [[nodiscard]] std::vector<smv::State> initial_states() const;

  /// All successors of `state` (deduplicated), honoring next assignments,
  /// TRANS and INVAR constraints.  Throws InvalidArgument if an assignment
  /// leaves a variable's declared domain (modeling error).
  [[nodiscard]] std::vector<smv::State> successors(const smv::State& state) const;

  /// Full reachability with state/transition counting (Fig. 3).
  [[nodiscard]] ReachabilityStats explore() const;

  /// BFS invariant check with shortest-counterexample extraction.
  [[nodiscard]] InvariantResult check_invariant(smv::ExprId property) const;

  /// Convenience: checks a Spec (both kinds reduce to invariant checking in
  /// our G-only fragment).
  [[nodiscard]] InvariantResult check_spec(const smv::Spec& spec) const {
    return check_invariant(spec.expr);
  }

 private:
  struct StateHash {
    std::size_t operator()(const smv::State& s) const noexcept {
      std::size_t h = 0xcbf29ce484222325ULL;
      for (const smv::i64 v : s) {
        h ^= static_cast<std::size_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
             (h >> 2);
      }
      return h;
    }
  };

  /// Enumerates the cartesian product of per-variable choice sets, invoking
  /// `sink` for each candidate state; returns false if a cap was hit.
  void for_each_candidate(
      const std::vector<std::vector<smv::i64>>& per_var,
      const std::function<void(const smv::State&)>& sink) const;

  [[nodiscard]] bool passes_invars(const smv::State& s) const;

  const smv::Module& module_;
  smv::Evaluator eval_;
  ExplicitOptions options_;
};

}  // namespace fannet::mc
