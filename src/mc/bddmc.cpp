#include "mc/bddmc.hpp"

#include "circuit/to_bdd.hpp"
#include <cmath>

#include "mc/compile.hpp"
#include "util/error.hpp"

namespace fannet::mc {

using bdd::Bdd;
using bdd::Manager;
using circuit::Circuit;
using circuit::Word;

BddChecker::BddChecker(const smv::Module& module, BddOptions options)
    : module_(module), options_(options) {}

BddCheckResult BddChecker::run(std::optional<smv::ExprId> property) const {
  SmvCompiler compiler(module_);

  // Build the whole combinational story first so the oracle count is known.
  Circuit c;
  const std::vector<Word> state = compiler.make_state_inputs(c);
  const std::size_t nbits = compiler.state_bits();
  const circuit::CLit init_ok = compiler.init_constraint(c, state);
  const SmvCompiler::Step step = compiler.step(c, state);
  circuit::CLit prop_ok = circuit::kTrue;
  if (property.has_value()) {
    prop_ok = compiler.compile_bool(c, *property, state);
  }
  const std::size_t num_oracles = c.num_inputs() - nbits;

  // Variable order: current bit g at 2g, next bit g at 2g+1, oracles after.
  Manager m(static_cast<unsigned>(2 * nbits + num_oracles));
  std::vector<Bdd> input_map(c.num_inputs());
  for (std::size_t g = 0; g < nbits; ++g) {
    input_map[g] = m.var(static_cast<unsigned>(2 * g));
  }
  std::vector<unsigned> oracle_vars;
  for (std::size_t k = 0; k < num_oracles; ++k) {
    const auto v = static_cast<unsigned>(2 * nbits + k);
    input_map[nbits + k] = m.var(v);
    oracle_vars.push_back(v);
  }
  circuit::BddConverter conv(c, m, input_map);

  const auto check_limit = [&] {
    if (m.num_nodes() > options_.max_nodes) {
      throw ResourceLimit("BddChecker: node limit exceeded (" +
                          std::to_string(options_.max_nodes) + ")");
    }
  };

  // Transition relation: valid ∧ (next-state bits == step function bits),
  // oracles quantified out.
  Bdd tr = conv.convert(step.valid);
  {
    std::size_t g = 0;
    for (const Word& w : step.next) {
      for (const circuit::CLit bit : w) {
        const Bdd fb = conv.convert(bit);
        tr = m.land(tr, m.iff(m.var(static_cast<unsigned>(2 * g + 1)), fb));
        ++g;
        check_limit();
      }
    }
  }
  tr = m.exists(tr, oracle_vars);
  check_limit();

  // Initial set over current bits (init choice oracles quantified out).
  Bdd reach = m.exists(conv.convert(init_ok), oracle_vars);

  // Rename map next->current for the image.
  std::vector<unsigned> next_to_cur(m.num_vars());
  for (unsigned v = 0; v < m.num_vars(); ++v) next_to_cur[v] = v;
  for (std::size_t g = 0; g < nbits; ++g) {
    next_to_cur[2 * g + 1] = static_cast<unsigned>(2 * g);
  }
  std::vector<unsigned> cur_vars;
  for (std::size_t g = 0; g < nbits; ++g) {
    cur_vars.push_back(static_cast<unsigned>(2 * g));
  }

  const Bdd bad =
      property.has_value() ? m.lnot(conv.convert(prop_ok)) : m.bdd_false();

  BddCheckResult out;
  Bdd frontier = reach;
  while (true) {
    ++out.fixpoint_iterations;
    check_limit();
    if (property.has_value() && !m.is_false(m.land(reach, bad))) {
      out.holds = false;
      // Decode one violating state.
      const std::vector<bool> assignment = m.any_sat(m.land(reach, bad));
      smv::State s;
      std::size_t g = 0;
      for (std::size_t v = 0; v < module_.vars().size(); ++v) {
        const std::size_t w = compiler.var_width(v);
        std::vector<bool> bits(w);
        for (std::size_t b = 0; b < w; ++b) bits[b] = assignment[2 * (g + b)];
        s.push_back(Circuit::decode(Word(w, circuit::kFalse), bits));
        g += w;
      }
      out.violating_state = std::move(s);
      out.reachable_states = m.sat_count(reach) /
                             std::pow(2.0, static_cast<double>(
                                               m.num_vars() - nbits));
      out.peak_nodes = m.num_nodes();
      return out;
    }
    const Bdd img =
        m.rename(m.exists(m.land(frontier, tr), cur_vars), next_to_cur);
    const Bdd next_reach = m.lor(reach, img);
    if (next_reach == reach) break;
    frontier = img;  // frontier-based expansion (new states only is an
                     // optimization; using the full image stays correct)
    reach = next_reach;
  }
  out.holds = true;
  // sat_count counts over all manager variables; scale away next+oracles.
  out.reachable_states =
      m.sat_count(reach) /
      std::pow(2.0, static_cast<double>(m.num_vars() - nbits));
  out.peak_nodes = m.num_nodes();
  return out;
}

BddCheckResult BddChecker::check_invariant(smv::ExprId property) const {
  return run(property);
}

BddCheckResult BddChecker::reachable_states() const { return run(std::nullopt); }

}  // namespace fannet::mc
