#include "mc/sat_engine.hpp"

#include <cstddef>
#include <vector>

#include "circuit/tseitin.hpp"
#include "core/translate.hpp"
#include "mc/compile.hpp"
#include "sat/solver.hpp"

namespace fannet::mc {

using circuit::Circuit;
using circuit::CLit;
using circuit::TseitinEncoder;
using circuit::Word;
using verify::Verdict;
using verify::VerifyResult;

VerifyResult sat_verify(const verify::Query& query,
                        const SatVerifyOptions& options, sat::ProofLog* proof) {
  query.validate();
  const core::Translation t = core::translate_sample(query);
  const SmvCompiler compiler(t.module);
  Circuit c;
  sat::Solver solver;
  // Attach the proof before the first clause so the log is a self-contained
  // DRAT certificate of the whole CNF.
  solver.set_proof(proof);
  solver.set_conflict_limit(options.conflict_budget);
  solver.set_propagation_limit(options.propagation_budget);
  solver.set_inprocess(options.inprocess);
  TseitinEncoder enc(c, solver);

  // Unroll exactly one transition: the initial state is s_init (the property
  // holds vacuously there) and every s_eval successor re-chooses the noise
  // over the whole box, so a violation exists iff one exists at depth 1.
  const std::vector<Word> state0 = compiler.make_state_inputs(c);
  enc.assert_true(compiler.init_constraint(c, state0));
  const SmvCompiler::Step step = compiler.step(c, state0);
  enc.assert_true(step.valid);
  const smv::ExprId property = t.module.specs().front().expr;
  // Assert the violation as a unit clause (not an assumption): a kUnsat
  // answer is then a plain refutation, checkable without assumptions.
  enc.assert_true(~compiler.compile_bool(c, property, step.next));

  // Pre-encode everything the incremental phase will touch *before* the
  // first solve — inprocessing (BVE in particular) forbids new clauses over
  // removed variables.  That is: the noise words themselves, plus one
  // threshold literal le[d][m] <=> (delta_d <= m) per interior grid value,
  // frozen so they survive as assumption literals.
  const std::size_t dims = query.noise_dims();
  std::vector<std::vector<sat::Lit>> le(dims);
  std::vector<Word> delta_words(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    delta_words[d] = step.next[t.layout.delta_vars[d]];
    (void)enc.lits(delta_words[d]);
    const int lo = query.box.lo[d];
    const int hi = query.box.hi[d];
    le[d].reserve(static_cast<std::size_t>(hi - lo));
    for (int m = lo; m < hi; ++m) {
      const Word bound = Circuit::word_const(m, Circuit::min_width(m));
      const sat::Lit l = enc.lit(c.leq_signed(delta_words[d], bound));
      solver.set_frozen(l.var());
      le[d].push_back(l);
    }
  }

  VerifyResult out;
  const sat::SolveResult first = solver.solve();
  out.work = solver.stats().conflicts;
  if (first == sat::SolveResult::kUnsat) {
    out.verdict = Verdict::kRobust;
    return out;
  }
  if (first == sat::SolveResult::kUnknown) {
    out.verdict = Verdict::kUnknown;
    out.resource_limited = true;
    return out;
  }

  // Refine to the lexicographically lowest witness: dimension 0 is most
  // significant, the bias dimension (when present) least.  Per dimension,
  // binary-search the least achievable value under pins of the earlier
  // dimensions; the solver's model always realizes the current best, so a
  // budget expiry mid-search still leaves a valid (just non-canonical)
  // witness.
  std::vector<sat::Lit> pins;
  bool limited = false;
  for (std::size_t d = 0; d < dims && !limited; ++d) {
    const int lo = query.box.lo[d];
    int lo_s = lo;
    int hi_s = static_cast<int>(enc.decode_word(delta_words[d]));
    while (lo_s < hi_s) {
      const int mid = lo_s + (hi_s - lo_s) / 2;
      std::vector<sat::Lit> assume = pins;
      assume.push_back(le[d][static_cast<std::size_t>(mid - lo)]);
      const sat::SolveResult r = solver.solve(assume);
      if (r == sat::SolveResult::kSat) {
        hi_s = static_cast<int>(enc.decode_word(delta_words[d]));
      } else if (r == sat::SolveResult::kUnsat) {
        lo_s = mid + 1;
      } else {
        limited = true;
        break;
      }
    }
    if (hi_s < query.box.hi[d]) {
      pins.push_back(le[d][static_cast<std::size_t>(hi_s - lo)]);
    }
    if (hi_s > lo) {
      pins.push_back(~le[d][static_cast<std::size_t>(hi_s - 1 - lo)]);
    }
  }

  // The model from the last kSat solve realizes every pinned dimension's
  // minimum (and some achievable value for the rest on budget expiry).
  std::vector<int> witness(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    witness[d] = static_cast<int>(enc.decode_word(delta_words[d]));
  }
  verify::Counterexample cex;
  cex.deltas.assign(witness.begin(),
                    witness.begin() + static_cast<std::ptrdiff_t>(query.x.size()));
  cex.bias_delta = query.bias_node ? witness.back() : 0;
  cex.mis_label = verify::classify_under_noise(query, witness);
  out.verdict = Verdict::kVulnerable;
  out.counterexample = std::move(cex);
  out.work = solver.stats().conflicts;
  out.resource_limited = limited;
  return out;
}

VerifyResult SatEngine::verify(const verify::Query& query) const {
  return sat_verify(query, SatVerifyOptions{});
}

VerifyResult SatEngine::verify_with(const verify::Query& query,
                                    const verify::VerifyContext& context) const {
  SatVerifyOptions options;
  if (context.conflict_budget != 0) {
    options.conflict_budget = context.conflict_budget;
  }
  if (context.propagation_budget != 0) {
    options.propagation_budget = context.propagation_budget;
  }
  return sat_verify(query, options);
}

}  // namespace fannet::mc
