#include "mc/sat_engine.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "circuit/tseitin.hpp"
#include "core/translate.hpp"
#include "mc/compile.hpp"
#include "sat/solver.hpp"
#include "verify/task.hpp"

namespace fannet::mc {

using circuit::Circuit;
using circuit::CLit;
using circuit::TseitinEncoder;
using circuit::Word;
using verify::Verdict;
using verify::VerifyResult;

namespace {

/// The decide-then-minimize pipeline of sat_verify unrolled into resumable
/// probes: one CDCL solve per `advance()` call, with all cross-solve state
/// (the incremental solver with its learnt clauses, the frozen threshold
/// literals, the binary-search cursor, the accumulated pins) held as
/// members.  `sat_verify` drives it in a tight loop; SatTask drives it one
/// solve per step with a re-armed conflict quota, which is what makes the
/// SAT engine pausable with bounded overshoot.
///
/// A stalled probe (solver kUnknown) leaves the session state untouched,
/// so the caller can either retry it on a later step (pause / step quota)
/// or `finalize_stalled()` (engine budget / deadline) — the latter
/// reproduces the blocking path's resource_limited results, including the
/// valid-but-non-canonical witness when the stall hits mid-minimization.
///
/// Determinism: whatever model a retried probe lands on, the per-dimension
/// binary search converges to the same lexicographically lowest witness —
/// SAT/UNSAT answers are semantic, and the final pins force every
/// dimension to its minimum — so pause/resume never changes the verdict
/// or the witness, only `work`.
class SatSession {
 public:
  enum class Advance {
    kMore,     ///< one probe done, more needed
    kStalled,  ///< the solver gave up (limits or stop callback); retry or
               ///< finalize_stalled()
    kDone,     ///< take_result() is ready
  };

  SatSession(const verify::Query& query, const SatVerifyOptions& options,
             sat::ProofLog* proof)
      : query_(query),
        t_(core::translate_sample(query)),
        compiler_(t_.module),
        enc_(c_, solver_) {
    // Attach the proof before the first clause so the log is a
    // self-contained DRAT certificate of the whole CNF.
    solver_.set_proof(proof);
    solver_.set_conflict_limit(options.conflict_budget);
    solver_.set_propagation_limit(options.propagation_budget);
    solver_.set_inprocess(options.inprocess);

    // Unroll exactly one transition: the initial state is s_init (the
    // property holds vacuously there) and every s_eval successor
    // re-chooses the noise over the whole box, so a violation exists iff
    // one exists at depth 1.
    const std::vector<Word> state0 = compiler_.make_state_inputs(c_);
    enc_.assert_true(compiler_.init_constraint(c_, state0));
    const SmvCompiler::Step step = compiler_.step(c_, state0);
    enc_.assert_true(step.valid);
    const smv::ExprId property = t_.module.specs().front().expr;
    // Assert the violation as a unit clause (not an assumption): a kUnsat
    // answer is then a plain refutation, checkable without assumptions.
    enc_.assert_true(~compiler_.compile_bool(c_, property, step.next));

    // Pre-encode everything the incremental phase will touch *before* the
    // first solve — inprocessing (BVE in particular) forbids new clauses
    // over removed variables.  That is: the noise words themselves, plus
    // one threshold literal le[d][m] <=> (delta_d <= m) per interior grid
    // value, frozen so they survive as assumption literals.
    dims_ = query.noise_dims();
    le_.resize(dims_);
    delta_words_.resize(dims_);
    for (std::size_t d = 0; d < dims_; ++d) {
      delta_words_[d] = step.next[t_.layout.delta_vars[d]];
      (void)enc_.lits(delta_words_[d]);
      const int lo = query.box.lo[d];
      const int hi = query.box.hi[d];
      le_[d].reserve(static_cast<std::size_t>(hi - lo));
      for (int m = lo; m < hi; ++m) {
        const Word bound = Circuit::word_const(m, Circuit::min_width(m));
        const sat::Lit l = enc_.lit(c_.leq_signed(delta_words_[d], bound));
        solver_.set_frozen(l.var());
        le_[d].push_back(l);
      }
    }
  }

  /// Runs one solver probe (the decision solve, or one binary-search
  /// probe of the witness minimization).
  Advance advance() {
    if (phase_ == Phase::kDone) return Advance::kDone;
    if (phase_ == Phase::kDecide) {
      const sat::SolveResult first = solver_.solve();
      out_.work = solver_.stats().conflicts;
      if (first == sat::SolveResult::kUnknown) return Advance::kStalled;
      if (first == sat::SolveResult::kUnsat) {
        out_.verdict = Verdict::kRobust;
        phase_ = Phase::kDone;
        return Advance::kDone;
      }
      // Refine to the lexicographically lowest witness: dimension 0 is
      // most significant, the bias dimension (when present) least.
      phase_ = Phase::kMinimize;
      d_ = 0;
      begin_dim();
      return Advance::kMore;
    }
    // Settle dimensions whose search range is already a point.
    while (d_ < dims_ && lo_s_ >= hi_s_) {
      finish_dim();
      ++d_;
      if (d_ < dims_) begin_dim();
    }
    if (d_ >= dims_) {
      compose_witness();
      phase_ = Phase::kDone;
      return Advance::kDone;
    }
    const int lo = query_.box.lo[d_];
    const int mid = lo_s_ + (hi_s_ - lo_s_) / 2;
    std::vector<sat::Lit> assume = pins_;
    assume.push_back(le_[d_][static_cast<std::size_t>(mid - lo)]);
    const sat::SolveResult r = solver_.solve(assume);
    if (r == sat::SolveResult::kUnknown) return Advance::kStalled;
    if (r == sat::SolveResult::kSat) {
      hi_s_ = static_cast<int>(enc_.decode_word(delta_words_[d_]));
    } else {
      lo_s_ = mid + 1;
    }
    return Advance::kMore;
  }

  /// Turns a stall into the final resource-limited result: kUnknown from
  /// the decision solve; mid-minimization, the solver's model always
  /// realizes the current best, so a budget expiry still leaves a valid
  /// (just non-canonical) witness.
  void finalize_stalled() {
    if (phase_ == Phase::kDecide) {
      out_.verdict = Verdict::kUnknown;
      out_.work = solver_.stats().conflicts;
      out_.resource_limited = true;
    } else if (phase_ == Phase::kMinimize) {
      limited_ = true;
      compose_witness();
    }
    phase_ = Phase::kDone;
  }

  [[nodiscard]] VerifyResult take_result() { return std::move(out_); }
  [[nodiscard]] sat::Solver& solver() noexcept { return solver_; }

 private:
  enum class Phase { kDecide, kMinimize, kDone };

  /// Opens dimension d_'s binary search: the least achievable value under
  /// the pins of the earlier dimensions lies in [lo_s_, hi_s_], where
  /// hi_s_ is what the last model realizes.
  void begin_dim() {
    lo_s_ = query_.box.lo[d_];
    hi_s_ = static_cast<int>(enc_.decode_word(delta_words_[d_]));
  }

  /// Pins dimension d_ at its minimum hi_s_ for the later searches.
  void finish_dim() {
    const int lo = query_.box.lo[d_];
    if (hi_s_ < query_.box.hi[d_]) {
      pins_.push_back(le_[d_][static_cast<std::size_t>(hi_s_ - lo)]);
    }
    if (hi_s_ > lo) {
      pins_.push_back(~le_[d_][static_cast<std::size_t>(hi_s_ - 1 - lo)]);
    }
  }

  /// The model from the last kSat solve realizes every pinned dimension's
  /// minimum (and some achievable value for the rest on budget expiry).
  void compose_witness() {
    std::vector<int> witness(dims_);
    for (std::size_t d = 0; d < dims_; ++d) {
      witness[d] = static_cast<int>(enc_.decode_word(delta_words_[d]));
    }
    verify::Counterexample cex;
    cex.deltas.assign(
        witness.begin(),
        witness.begin() + static_cast<std::ptrdiff_t>(query_.x.size()));
    cex.bias_delta = query_.bias_node ? witness.back() : 0;
    cex.mis_label = verify::classify_under_noise(query_, witness);
    out_.verdict = Verdict::kVulnerable;
    out_.counterexample = std::move(cex);
    out_.work = solver_.stats().conflicts;
    out_.resource_limited = limited_;
  }

  const verify::Query& query_;  // owned by the caller, outlives the session
  core::Translation t_;
  SmvCompiler compiler_;
  Circuit c_;
  sat::Solver solver_;
  TseitinEncoder enc_;

  std::size_t dims_ = 0;
  std::vector<std::vector<sat::Lit>> le_;
  std::vector<Word> delta_words_;

  Phase phase_ = Phase::kDecide;
  std::vector<sat::Lit> pins_;
  std::size_t d_ = 0;
  int lo_s_ = 0;
  int hi_s_ = 0;
  bool limited_ = false;
  VerifyResult out_;
};

/// Native resumable task: the CNF is encoded on the first step, then each
/// step runs one session probe under a re-armed cumulative conflict quota
/// (min of the engine budget and conflicts-so-far + max_work) with the
/// solver's stop callback wired to the task's yield flags — so pause,
/// cancel, and deadline all take effect *inside* a running solve, at
/// conflict/decision granularity, and learnt clauses persist across steps.
class SatTask final : public verify::EngineTask {
 public:
  SatTask(verify::Query query, SatVerifyOptions options,
          const verify::Budget& budget)
      : EngineTask(budget),
        query_(std::move(query)),
        options_(std::move(options)) {}

 private:
  bool step_impl(std::uint64_t max_work,
                 verify::VerifyResult& out) override {
    if (!session_.has_value()) {
      query_.validate();
      session_.emplace(query_, options_, nullptr);
      session_->solver().set_stop([this] { return should_yield(); });
    }
    sat::Solver& solver = session_->solver();
    const std::uint64_t step_cap = solver.stats().conflicts + max_work;
    const std::uint64_t cumulative = options_.conflict_budget;
    solver.set_conflict_limit(
        cumulative == 0 ? step_cap : std::min(cumulative, step_cap));

    const SatSession::Advance a = session_->advance();
    if (a == SatSession::Advance::kDone) {
      out = session_->take_result();
      return true;
    }
    if (a == SatSession::Advance::kMore) return false;
    // Stalled: the engine's own budget and a deadline/cancel finalize (a
    // witness already in hand survives, flagged resource_limited); a pause
    // or the step quota just parks the probe for a later step.
    if (interrupted() || engine_budget_spent()) {
      session_->finalize_stalled();
      out = session_->take_result();
      return true;
    }
    return false;
  }

  [[nodiscard]] bool engine_budget_spent() {
    const sat::SolverStats& s = session_->solver().stats();
    return (options_.conflict_budget != 0 &&
            s.conflicts >= options_.conflict_budget) ||
           (options_.propagation_budget != 0 &&
            s.propagations >= options_.propagation_budget);
  }

  verify::Query query_;
  SatVerifyOptions options_;
  std::optional<SatSession> session_;  // encoded on the first step
};

[[nodiscard]] SatVerifyOptions resolve_options(
    const verify::VerifyContext& context) {
  SatVerifyOptions options;
  if (context.budget.conflicts != 0) {
    options.conflict_budget = context.budget.conflicts;
  }
  if (context.budget.propagations != 0) {
    options.propagation_budget = context.budget.propagations;
  }
  return options;
}

}  // namespace

VerifyResult sat_verify(const verify::Query& query,
                        const SatVerifyOptions& options, sat::ProofLog* proof) {
  query.validate();
  SatSession session(query, options, proof);
  for (;;) {
    const SatSession::Advance a = session.advance();
    if (a == SatSession::Advance::kMore) continue;
    if (a == SatSession::Advance::kStalled) session.finalize_stalled();
    return session.take_result();
  }
}

VerifyResult SatEngine::verify(const verify::Query& query) const {
  return sat_verify(query, SatVerifyOptions{});
}

VerifyResult SatEngine::verify_with(const verify::Query& query,
                                    const verify::VerifyContext& context) const {
  // Drive the native task: the blocking path and the task path are then
  // one code path, deadline/cancel included.
  return verify::run_task(*this, query, context);
}

std::unique_ptr<verify::EngineTask> SatEngine::make_task(
    const verify::Query& query, const verify::VerifyContext& context) const {
  query.validate();
  return std::make_unique<SatTask>(query, resolve_options(context),
                                   context.budget);
}

}  // namespace fannet::mc
