/// \file
/// \brief Small dense row-major matrix used for network parameters.
///
/// Deliberately minimal: the networks in the paper are tiny (5-20-2), so this
/// favours clarity and bounds-checked access over BLAS-style performance.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace fannet::la {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<T>>& rows) {
    if (rows.empty()) return {};
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].size() != m.cols_) {
        throw InvalidArgument("Matrix::from_rows: ragged rows");
      }
      for (std::size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    check(r, c);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    check(r, c);
    return data_[r * cols_ + c];
  }

  /// View of one row (contiguous in memory).
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    check(r, 0);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<T> row(std::size_t r) {
    check(r, 0);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<const T> data() const noexcept { return data_; }
  [[nodiscard]] std::span<T> data() noexcept { return data_; }

  [[nodiscard]] bool operator==(const Matrix&) const = default;

 private:
  void check(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) {
      throw InvalidArgument("Matrix: index (" + std::to_string(r) + "," +
                            std::to_string(c) + ") out of " +
                            std::to_string(rows_) + "x" + std::to_string(cols_));
    }
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// y = M x  (dimensions checked).
template <typename T>
[[nodiscard]] std::vector<T> matvec(const Matrix<T>& m, std::span<const T> x) {
  if (x.size() != m.cols()) {
    throw InvalidArgument("matvec: dimension mismatch");
  }
  std::vector<T> y(m.rows(), T{});
  for (std::size_t r = 0; r < m.rows(); ++r) {
    T acc{};
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

/// Transpose.
template <typename T>
[[nodiscard]] Matrix<T> transpose(const Matrix<T>& m) {
  Matrix<T> t(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) t(c, r) = m(r, c);
  }
  return t;
}

using MatrixD = Matrix<double>;

}  // namespace fannet::la
