/// \file
/// \brief Reduced Ordered Binary Decision Diagram (ROBDD) package.
///
/// The paper contrasts BDD-based model checkers (PSPACE-complete, memory
/// bound) with SAT-based ones when motivating its choice of nuXmv; this
/// package is the BDD side of that comparison and backs the symbolic
/// reachability engine in mc/bddmc.
///
/// Classic Bryant construction: a global unique table guarantees canonicity
/// (two equivalent functions are the same node), an operation cache memoizes
/// ite(), and quantification/composition are built on ite.  Nodes are
/// reference-less and owned by the manager; Bdd handles are cheap value
/// types.  Garbage collection is intentionally absent — the models checked
/// here are small and the manager's arena dies with it (documented trade-off).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fannet::bdd {

using NodeId = std::uint32_t;

class Manager;

/// Value-type handle to a BDD node inside a Manager.
class Bdd {
 public:
  Bdd() = default;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] bool operator==(const Bdd&) const noexcept = default;

 private:
  friend class Manager;
  explicit Bdd(NodeId id) : id_(id) {}
  NodeId id_ = 0;  // 0 = false terminal by convention
};

class Manager {
 public:
  /// `num_vars` fixes the variable order: variable 0 is the topmost.
  explicit Manager(unsigned num_vars);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }

  [[nodiscard]] Bdd bdd_false() const noexcept { return Bdd(0); }
  [[nodiscard]] Bdd bdd_true() const noexcept { return Bdd(1); }
  [[nodiscard]] Bdd var(unsigned v);       ///< the function "v"
  [[nodiscard]] Bdd nvar(unsigned v);      ///< the function "!v"

  [[nodiscard]] bool is_true(Bdd f) const noexcept { return f.id() == 1; }
  [[nodiscard]] bool is_false(Bdd f) const noexcept { return f.id() == 0; }
  [[nodiscard]] bool is_const(Bdd f) const noexcept { return f.id() <= 1; }

  // Boolean connectives (all reduce to ite).
  [[nodiscard]] Bdd ite(Bdd f, Bdd g, Bdd h);
  [[nodiscard]] Bdd land(Bdd f, Bdd g) { return ite(f, g, bdd_false()); }
  [[nodiscard]] Bdd lor(Bdd f, Bdd g) { return ite(f, bdd_true(), g); }
  [[nodiscard]] Bdd lnot(Bdd f) { return ite(f, bdd_false(), bdd_true()); }
  [[nodiscard]] Bdd lxor(Bdd f, Bdd g) { return ite(f, lnot(g), g); }
  [[nodiscard]] Bdd implies(Bdd f, Bdd g) { return ite(f, g, bdd_true()); }
  [[nodiscard]] Bdd iff(Bdd f, Bdd g) { return ite(f, g, lnot(g)); }

  /// Shannon cofactor of f with variable v fixed to `value`.
  [[nodiscard]] Bdd restrict_var(Bdd f, unsigned v, bool value);

  /// Existential/universal quantification over one variable or a set.
  [[nodiscard]] Bdd exists(Bdd f, unsigned v);
  [[nodiscard]] Bdd exists(Bdd f, const std::vector<unsigned>& vars);
  [[nodiscard]] Bdd forall(Bdd f, unsigned v);

  /// Simultaneous variable-to-variable substitution (used to map next-state
  /// variables back to current-state ones).  `map[v]` = replacement var for
  /// v; identity entries allowed.
  [[nodiscard]] Bdd rename(Bdd f, const std::vector<unsigned>& map);

  /// Number of satisfying assignments over all `num_vars` variables.
  [[nodiscard]] double sat_count(Bdd f);

  /// One satisfying assignment (value per variable; unconstrained variables
  /// read false).  Precondition: f is not the false terminal.
  [[nodiscard]] std::vector<bool> any_sat(Bdd f) const;

  /// Evaluate under a full assignment.
  [[nodiscard]] bool eval(Bdd f, const std::vector<bool>& assignment) const;

  /// Node count of the sub-DAG rooted at f (a size measure for benchmarks).
  [[nodiscard]] std::size_t dag_size(Bdd f) const;

  /// Graphviz dot rendering (for documentation/examples).
  [[nodiscard]] std::string to_dot(Bdd f, const std::string& name) const;

 private:
  struct Node {
    unsigned var;  // kTerminalVar for terminals
    NodeId low;
    NodeId high;
  };
  static constexpr unsigned kTerminalVar = ~0u;

  struct NodeKey {
    unsigned var;
    NodeId low;
    NodeId high;
    bool operator==(const NodeKey&) const = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ULL + k.low;
      h = h * 0x9e3779b97f4a7c15ULL + k.high;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };
  struct IteKey {
    NodeId f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::size_t operator()(const IteKey& k) const noexcept {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ULL + k.g;
      h = h * 0x9e3779b97f4a7c15ULL + k.h;
      return static_cast<std::size_t>(h ^ (h >> 32));
    }
  };

  [[nodiscard]] NodeId make_node(unsigned var, NodeId low, NodeId high);
  [[nodiscard]] NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  [[nodiscard]] unsigned top_var(NodeId f, NodeId g, NodeId h) const;
  [[nodiscard]] NodeId cofactor(NodeId f, unsigned var, bool value) const;

  unsigned num_vars_;
  std::vector<Node> nodes_;  // [0]=false, [1]=true
  std::unordered_map<NodeKey, NodeId, NodeKeyHash> unique_;
  std::unordered_map<IteKey, NodeId, IteKeyHash> ite_cache_;
};

}  // namespace fannet::bdd
