#include "bdd/bdd.hpp"

#include <cmath>
#include <sstream>
#include <unordered_set>

#include "util/error.hpp"

namespace fannet::bdd {

Manager::Manager(unsigned num_vars) : num_vars_(num_vars) {
  nodes_.push_back({kTerminalVar, 0, 0});  // id 0: false
  nodes_.push_back({kTerminalVar, 1, 1});  // id 1: true
}

Bdd Manager::var(unsigned v) {
  if (v >= num_vars_) throw InvalidArgument("Manager::var: index out of range");
  return Bdd(make_node(v, 0, 1));
}

Bdd Manager::nvar(unsigned v) {
  if (v >= num_vars_) throw InvalidArgument("Manager::nvar: index out of range");
  return Bdd(make_node(v, 1, 0));
}

NodeId Manager::make_node(unsigned var, NodeId low, NodeId high) {
  if (low == high) return low;  // reduction rule
  const NodeKey key{var, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) {
    return it->second;
  }
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({var, low, high});
  unique_.emplace(key, id);
  return id;
}

unsigned Manager::top_var(NodeId f, NodeId g, NodeId h) const {
  unsigned top = kTerminalVar;
  for (const NodeId n : {f, g, h}) {
    if (n > 1 && nodes_[n].var < top) top = nodes_[n].var;
  }
  return top;
}

NodeId Manager::cofactor(NodeId f, unsigned var, bool value) const {
  if (f <= 1) return f;
  const Node& n = nodes_[f];
  if (n.var != var) return f;  // f does not depend on var at the top
  return value ? n.high : n.low;
}

NodeId Manager::ite_rec(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == 1) return g;
  if (f == 0) return h;
  if (g == h) return g;
  if (g == 1 && h == 0) return f;

  const IteKey key{f, g, h};
  if (const auto it = ite_cache_.find(key); it != ite_cache_.end()) {
    return it->second;
  }
  const unsigned v = top_var(f, g, h);
  const NodeId lo =
      ite_rec(cofactor(f, v, false), cofactor(g, v, false), cofactor(h, v, false));
  const NodeId hi =
      ite_rec(cofactor(f, v, true), cofactor(g, v, true), cofactor(h, v, true));
  const NodeId r = make_node(v, lo, hi);
  ite_cache_.emplace(key, r);
  return r;
}

Bdd Manager::ite(Bdd f, Bdd g, Bdd h) {
  return Bdd(ite_rec(f.id(), g.id(), h.id()));
}

Bdd Manager::restrict_var(Bdd f, unsigned v, bool value) {
  if (v >= num_vars_) {
    throw InvalidArgument("Manager::restrict_var: index out of range");
  }
  // Substitutes the constant for v by rebuilding the DAG above v's level.
  struct Walker {
    Manager& m;
    unsigned v;
    bool value;
    std::unordered_map<NodeId, NodeId> memo;
    NodeId walk(NodeId n) {
      if (n <= 1) return n;
      const Node node = m.nodes_[n];
      if (node.var > v && node.var != kTerminalVar) return n;  // below v: unchanged
      if (const auto it = memo.find(n); it != memo.end()) return it->second;
      NodeId r;
      if (node.var == v) {
        r = value ? node.high : node.low;
      } else {
        r = m.make_node(node.var, walk(node.low), walk(node.high));
      }
      memo.emplace(n, r);
      return r;
    }
  } walker{*this, v, value, {}};
  return Bdd(walker.walk(f.id()));
}

Bdd Manager::exists(Bdd f, unsigned v) {
  return lor(restrict_var(f, v, false), restrict_var(f, v, true));
}

Bdd Manager::exists(Bdd f, const std::vector<unsigned>& vars) {
  Bdd r = f;
  for (const unsigned v : vars) r = exists(r, v);
  return r;
}

Bdd Manager::forall(Bdd f, unsigned v) {
  return land(restrict_var(f, v, false), restrict_var(f, v, true));
}

Bdd Manager::rename(Bdd f, const std::vector<unsigned>& map) {
  if (map.size() != num_vars_) {
    throw InvalidArgument("Manager::rename: map size must equal num_vars");
  }
  // Compose bottom-up: rebuild the DAG substituting each variable.  Because
  // the substitution is variable-to-variable the result may violate ordering
  // locally, so rebuild via ite(new_var, high', low') which restores order.
  struct Walker {
    Manager& m;
    const std::vector<unsigned>& map;
    std::unordered_map<NodeId, NodeId> memo;
    NodeId walk(NodeId n) {
      if (n <= 1) return n;
      if (const auto it = memo.find(n); it != memo.end()) return it->second;
      const Node node = m.nodes_[n];
      const NodeId lo = walk(node.low);
      const NodeId hi = walk(node.high);
      const NodeId v = m.make_node(map[node.var], 0, 1);
      const NodeId r = m.ite_rec(v, hi, lo);
      memo.emplace(n, r);
      return r;
    }
  } walker{*this, map, {}};
  return Bdd(walker.walk(f.id()));
}

double Manager::sat_count(Bdd f) {
  struct Walker {
    const Manager& m;
    std::unordered_map<NodeId, double> memo;
    // Returns count over variables [var(n), num_vars).
    double walk(NodeId n) {
      if (n == 0) return 0.0;
      if (n == 1) return 1.0;
      if (const auto it = memo.find(n); it != memo.end()) return it->second;
      const Node& node = m.nodes_[n];
      const auto skip = [&](NodeId child) {
        const unsigned child_var =
            child <= 1 ? m.num_vars_ : m.nodes_[child].var;
        return static_cast<double>(child_var - node.var - 1);
      };
      const double r = std::ldexp(walk(node.low), static_cast<int>(skip(node.low))) +
                       std::ldexp(walk(node.high), static_cast<int>(skip(node.high)));
      memo.emplace(n, r);
      return r;
    }
  } walker{*this, {}};
  const NodeId root = f.id();
  const unsigned root_var = root <= 1 ? num_vars_ : nodes_[root].var;
  return std::ldexp(walker.walk(root), static_cast<int>(root_var));
}

std::vector<bool> Manager::any_sat(Bdd f) const {
  if (f.id() == 0) {
    throw InvalidArgument("Manager::any_sat: function is unsatisfiable");
  }
  std::vector<bool> assignment(num_vars_, false);
  NodeId n = f.id();
  while (n > 1) {
    const Node& node = nodes_[n];
    if (node.low != 0) {
      assignment[node.var] = false;
      n = node.low;
    } else {
      assignment[node.var] = true;
      n = node.high;
    }
  }
  return assignment;
}

bool Manager::eval(Bdd f, const std::vector<bool>& assignment) const {
  if (assignment.size() != num_vars_) {
    throw InvalidArgument("Manager::eval: assignment size mismatch");
  }
  NodeId n = f.id();
  while (n > 1) {
    const Node& node = nodes_[n];
    n = assignment[node.var] ? node.high : node.low;
  }
  return n == 1;
}

std::size_t Manager::dag_size(Bdd f) const {
  std::unordered_set<NodeId> visited;
  std::vector<NodeId> stack{f.id()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n <= 1 || !visited.insert(n).second) continue;
    stack.push_back(nodes_[n].low);
    stack.push_back(nodes_[n].high);
  }
  return visited.size() + (f.id() <= 1 ? 1 : 2);  // + terminals
}

std::string Manager::to_dot(Bdd f, const std::string& name) const {
  std::ostringstream out;
  out << "digraph \"" << name << "\" {\n";
  out << "  t0 [label=\"0\", shape=box];\n  t1 [label=\"1\", shape=box];\n";
  std::unordered_set<NodeId> visited;
  std::vector<NodeId> stack{f.id()};
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (n <= 1 || !visited.insert(n).second) continue;
    const Node& node = nodes_[n];
    // Built via append rather than operator+(const char*, string&&), which
    // trips GCC 12's -Wrestrict false positive (PR 105329) at -O2.
    const auto ref = [](NodeId id) {
      std::string s(id <= 1 ? "t" : "n");
      s += std::to_string(id);
      return s;
    };
    out << "  n" << n << " [label=\"x" << node.var << "\"];\n";
    out << "  n" << n << " -> " << ref(node.low) << " [style=dashed];\n";
    out << "  n" << n << " -> " << ref(node.high) << ";\n";
    stack.push_back(node.low);
    stack.push_back(node.high);
  }
  out << "}\n";
  return out.str();
}

}  // namespace fannet::bdd
