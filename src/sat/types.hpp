/// \file
/// \brief Core SAT types: variables, literals, ternary assignment values.
///
/// Follows the MiniSat conventions: variables are dense 0-based ints and a
/// literal packs (variable, sign) into one int so it can index watch lists
/// directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fannet::sat {

using Var = std::int32_t;
inline constexpr Var kUndefVar = -1;

/// A literal: index = var*2 + (negated ? 1 : 0).
class Lit {
 public:
  constexpr Lit() noexcept = default;
  constexpr Lit(Var v, bool negated) noexcept : code_(v * 2 + (negated ? 1 : 0)) {}

  [[nodiscard]] static constexpr Lit from_code(std::int32_t code) noexcept {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] constexpr Var var() const noexcept { return code_ >> 1; }
  [[nodiscard]] constexpr bool negated() const noexcept { return code_ & 1; }
  [[nodiscard]] constexpr std::int32_t code() const noexcept { return code_; }
  [[nodiscard]] constexpr bool is_undef() const noexcept { return code_ < 0; }

  [[nodiscard]] constexpr Lit operator~() const noexcept {
    return from_code(code_ ^ 1);
  }
  [[nodiscard]] constexpr bool operator==(const Lit&) const noexcept = default;

  /// DIMACS-style rendering: variable 0 negated prints as "-1".
  [[nodiscard]] std::string to_string() const {
    return (negated() ? "-" : "") + std::to_string(var() + 1);
  }

 private:
  std::int32_t code_ = -2;
};

inline constexpr Lit kUndefLit = Lit::from_code(-2);

/// Ternary truth value.
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

[[nodiscard]] constexpr LBool lbool_from(bool b) noexcept {
  return b ? LBool::kTrue : LBool::kFalse;
}
[[nodiscard]] constexpr LBool negate(LBool v) noexcept {
  switch (v) {
    case LBool::kFalse: return LBool::kTrue;
    case LBool::kTrue: return LBool::kFalse;
    default: return LBool::kUndef;
  }
}

using Clause = std::vector<Lit>;

enum class SolveResult : std::uint8_t { kSat, kUnsat, kUnknown };

[[nodiscard]] inline std::string to_string(SolveResult r) {
  switch (r) {
    case SolveResult::kSat: return "SAT";
    case SolveResult::kUnsat: return "UNSAT";
    default: return "UNKNOWN";
  }
}

}  // namespace fannet::sat
