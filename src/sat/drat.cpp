#include "sat/drat.hpp"

#include <algorithm>
#include <cstddef>
#include <sstream>

namespace fannet::sat {
namespace {

constexpr std::uint64_t kDefaultPropagationBudget = 50'000'000;

/// Minimal counting-based unit propagator for proof checking.  Clauses are
/// kept as literal lists; propagation walks full occurrence lists.  That is
/// asymptotically worse than two-watched literals, but the checker is run on
/// test-sized logs where simplicity (and independence from the solver's
/// propagation code) matters more than speed; the budget bounds the worst
/// case either way.
class CheckerDb {
 public:
  struct CheckClause {
    Clause lits;
    bool deleted = false;
  };

  explicit CheckerDb(std::uint64_t budget) : budget_(budget) {}

  void ensure_var(Var v) {
    if (static_cast<std::size_t>(v) >= assigns_.size()) {
      assigns_.resize(static_cast<std::size_t>(v) + 1, LBool::kUndef);
      occurs_.resize(2 * (static_cast<std::size_t>(v) + 1));
    }
  }

  /// Adds a clause to the database and indexes it.  Returns its id.
  std::size_t add(const Clause& lits) {
    std::size_t id = clauses_.size();
    clauses_.push_back({lits, false});
    for (Lit l : lits) {
      ensure_var(l.var());
      occurs_[static_cast<std::size_t>(l.code())].push_back(id);
    }
    return id;
  }

  /// Marks the first live clause with exactly these literals (as a set) as
  /// deleted.  Missing clauses are ignored: the solver logs deletions of its
  /// *simplified* internal clause forms, and a checker that keeps the
  /// original clauses only propagates more — which never un-verifies a
  /// correct proof.
  void remove(const Clause& lits) {
    Clause key = normalized(lits);
    for (std::size_t id = 0; id < clauses_.size(); ++id) {
      if (!clauses_[id].deleted && normalized(clauses_[id].lits) == key) {
        clauses_[id].deleted = true;
        return;
      }
    }
  }

  [[nodiscard]] LBool value(Lit l) const {
    LBool v = assigns_[static_cast<std::size_t>(l.var())];
    if (v == LBool::kUndef) return LBool::kUndef;
    bool val = (v == LBool::kTrue) != l.negated();
    return val ? LBool::kTrue : LBool::kFalse;
  }

  /// Enqueues `l` as true; returns false if it contradicts the current
  /// assignment.
  bool enqueue(Lit l) {
    ensure_var(l.var());
    LBool v = value(l);
    if (v == LBool::kFalse) return false;
    if (v == LBool::kUndef) {
      assigns_[static_cast<std::size_t>(l.var())] =
          l.negated() ? LBool::kFalse : LBool::kTrue;
      trail_.push_back(l);
    }
    return true;
  }

  enum class PropResult : std::uint8_t { kConflict, kFixpoint, kBudget };

  /// Unit-propagates to fixpoint over all live clauses.
  PropResult propagate() {
    while (head_ < trail_.size()) {
      Lit l = trail_[head_++];
      // Clauses containing ~l may have become unit or empty.
      const auto& occ = occurs_[static_cast<std::size_t>((~l).code())];
      for (std::size_t id : occ) {
        const CheckClause& c = clauses_[id];
        if (c.deleted) continue;
        if (++propagations_ > budget_) return PropResult::kBudget;
        Lit unit = kUndefLit;
        bool satisfied = false;
        int unassigned = 0;
        for (Lit cl : c.lits) {
          LBool v = value(cl);
          if (v == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (v == LBool::kUndef) {
            if (cl == unit) continue;  // duplicate literal, count once
            ++unassigned;
            unit = cl;
            if (unassigned > 1) break;
          }
        }
        if (satisfied || unassigned > 1) continue;
        if (unassigned == 0) return PropResult::kConflict;
        if (!enqueue(unit)) return PropResult::kConflict;
      }
    }
    return PropResult::kFixpoint;
  }

  /// Undoes every assignment made after `mark` (a previous trail size).
  void backtrack_to(std::size_t mark) {
    while (trail_.size() > mark) {
      assigns_[static_cast<std::size_t>(trail_.back().var())] = LBool::kUndef;
      trail_.pop_back();
    }
    head_ = std::min(head_, trail_.size());
  }

  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  [[nodiscard]] std::uint64_t propagations() const { return propagations_; }

 private:
  static Clause normalized(const Clause& lits) {
    Clause key = lits;
    std::sort(key.begin(), key.end(),
              [](Lit a, Lit b) { return a.code() < b.code(); });
    key.erase(std::unique(key.begin(), key.end()), key.end());
    return key;
  }

  std::vector<CheckClause> clauses_;
  std::vector<std::vector<std::size_t>> occurs_;  // lit code -> clause ids
  std::vector<LBool> assigns_;
  std::vector<Lit> trail_;
  std::size_t head_ = 0;
  std::uint64_t propagations_ = 0;
  std::uint64_t budget_;
};

std::string describe_clause(const Clause& lits) {
  std::ostringstream out;
  out << "(";
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i != 0) out << " ";
    out << lits[i].to_string();
  }
  out << ")";
  return out.str();
}

}  // namespace

std::size_t ProofLog::derivations() const noexcept {
  std::size_t n = 0;
  for (const Line& line : lines_) {
    if (line.kind == Kind::kDerive) ++n;
  }
  return n;
}

Cnf ProofLog::formula() const {
  Cnf cnf;
  int max_var = -1;
  for (const Line& line : lines_) {
    for (Lit l : line.lits) max_var = std::max(max_var, l.var());
    if (line.kind == Kind::kInput) cnf.clauses.push_back(line.lits);
  }
  cnf.num_vars = max_var + 1;
  return cnf;
}

std::string ProofLog::to_drat() const {
  std::ostringstream out;
  for (const Line& line : lines_) {
    if (line.kind == Kind::kInput) continue;
    if (line.kind == Kind::kDelete) out << "d ";
    for (Lit l : line.lits) out << l.to_string() << " ";
    out << "0\n";
  }
  return out.str();
}

ProofCheckResult check_proof(const ProofLog& proof,
                             std::span<const Lit> assumptions,
                             std::uint64_t propagation_budget) {
  if (propagation_budget == 0) propagation_budget = kDefaultPropagationBudget;
  CheckerDb db(propagation_budget);
  ProofCheckResult result;

  auto out_of_budget = [&] {
    result.status = ProofCheckResult::Status::kBudget;
    result.detail = "propagation budget exhausted";
    result.propagations = db.propagations();
    return result;
  };

  // Top-level units are propagated once and stay on the trail; RUP checks
  // below push/pop on top of them.
  auto assert_and_propagate = [&](const Clause& lits) -> CheckerDb::PropResult {
    db.add(lits);  // ensures every variable exists
    // Evaluate the clause under the current root trail: it may arrive
    // already unit — or falsified (the log records clauses *before* the
    // solver's own level-0 simplification, e.g. a clause whose literals
    // are all false under earlier units) — and occurrence-driven
    // propagation alone would never revisit it.
    Lit unit = kUndefLit;
    bool satisfied = false;
    int unassigned = 0;
    for (Lit l : lits) {
      const LBool v = db.value(l);
      if (v == LBool::kTrue) {
        satisfied = true;
        break;
      }
      if (v == LBool::kUndef) {
        if (l == unit) continue;  // duplicate literal, count once
        ++unassigned;
        unit = l;
        if (unassigned > 1) break;
      }
    }
    if (satisfied || unassigned > 1) return CheckerDb::PropResult::kFixpoint;
    if (unassigned == 0) return CheckerDb::PropResult::kConflict;
    if (!db.enqueue(unit)) return CheckerDb::PropResult::kConflict;
    return db.propagate();
  };

  bool proved_empty = false;  // derived the empty clause (or a root conflict)
  std::size_t line_no = 0;
  for (const ProofLog::Line& line : proof.lines()) {
    ++line_no;
    if (proved_empty) break;  // UNSAT already certified; rest is moot
    switch (line.kind) {
      case ProofLog::Kind::kInput: {
        CheckerDb::PropResult r = assert_and_propagate(line.lits);
        if (r == CheckerDb::PropResult::kBudget) return out_of_budget();
        if (r == CheckerDb::PropResult::kConflict) {
          proved_empty = true;  // formula is root-conflicting on its own
        }
        break;
      }
      case ProofLog::Kind::kDelete:
        db.remove(line.lits);
        break;
      case ProofLog::Kind::kDerive: {
        // RUP check: assume the negation of every literal, propagate, and
        // demand a conflict.
        std::size_t mark = db.trail_size();
        bool conflict = false;
        for (Lit l : line.lits) {
          db.ensure_var(l.var());
          if (!db.enqueue(~l)) {
            conflict = true;
            break;
          }
        }
        if (!conflict) {
          CheckerDb::PropResult r = db.propagate();
          if (r == CheckerDb::PropResult::kBudget) return out_of_budget();
          conflict = (r == CheckerDb::PropResult::kConflict);
        }
        db.backtrack_to(mark);
        if (!conflict) {
          result.status = ProofCheckResult::Status::kFailed;
          result.detail = "derivation " + std::to_string(line_no) + " " +
                          describe_clause(line.lits) + " is not RUP";
          result.propagations = db.propagations();
          return result;
        }
        // The clause checked out; install it (units go on the root trail).
        CheckerDb::PropResult r = assert_and_propagate(line.lits);
        if (r == CheckerDb::PropResult::kBudget) return out_of_budget();
        if (r == CheckerDb::PropResult::kConflict) proved_empty = true;
        break;
      }
    }
  }

  // Final step: the verified clause set plus the assumptions must conflict.
  if (!proved_empty) {
    bool conflict = false;
    for (Lit l : assumptions) {
      db.ensure_var(l.var());
      if (!db.enqueue(l)) {
        conflict = true;
        break;
      }
    }
    if (!conflict) {
      CheckerDb::PropResult r = db.propagate();
      if (r == CheckerDb::PropResult::kBudget) return out_of_budget();
      conflict = (r == CheckerDb::PropResult::kConflict);
    }
    if (!conflict) {
      result.status = ProofCheckResult::Status::kFailed;
      result.detail =
          "formula + derivations + assumptions propagate without conflict";
      result.propagations = db.propagations();
      return result;
    }
  }

  result.status = ProofCheckResult::Status::kVerified;
  result.propagations = db.propagations();
  return result;
}

}  // namespace fannet::sat
