/// \file
/// \brief DIMACS CNF import/export for the SAT solver (interoperability + tests).
#pragma once

#include <string>
#include <vector>

#include "sat/types.hpp"

namespace fannet::sat {

struct Cnf {
  int num_vars = 0;
  std::vector<Clause> clauses;
};

/// Parses DIMACS text ("p cnf V C" header, clauses terminated by 0,
/// 'c' comment lines).  Throws ParseError on malformed input.
[[nodiscard]] Cnf parse_dimacs(const std::string& text);

/// Serializes a CNF in DIMACS format.
[[nodiscard]] std::string to_dimacs(const Cnf& cnf);

class Solver;

/// Loads a CNF into a fresh region of `solver` (creates its variables).
/// Returns false if the instance is already UNSAT at level 0.
bool load_cnf(Solver& solver, const Cnf& cnf);

}  // namespace fannet::sat
