#include "sat/dimacs.hpp"

#include <climits>
#include <sstream>
#include <string>

#include "sat/solver.hpp"
#include "util/error.hpp"

namespace fannet::sat {

Cnf parse_dimacs(const std::string& text) {
  std::istringstream in(text);
  Cnf cnf;
  std::string token;
  bool have_header = false;
  long long declared_clauses = 0;
  Clause current;

  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      // Read signed so "p cnf -3 -1" is rejected rather than wrapping to a
      // huge unsigned count / garbage num_vars.
      std::string fmt;
      long long declared_vars = 0;
      if (!(in >> fmt >> declared_vars >> declared_clauses) || fmt != "cnf") {
        throw ParseError("parse_dimacs: bad problem line");
      }
      if (declared_vars < 0 || declared_clauses < 0) {
        throw ParseError(
            "parse_dimacs: negative variable or clause count in problem line");
      }
      if (declared_vars > INT_MAX) {
        throw ParseError("parse_dimacs: declared variable count too large");
      }
      cnf.num_vars = static_cast<int>(declared_vars);
      have_header = true;
      continue;
    }
    int lit = 0;
    try {
      lit = std::stoi(token);
    } catch (const std::exception&) {
      throw ParseError("parse_dimacs: bad token '" + token + "'");
    }
    if (!have_header) throw ParseError("parse_dimacs: literal before header");
    if (lit == 0) {
      cnf.clauses.push_back(std::move(current));
      current.clear();
    } else {
      const int v = std::abs(lit) - 1;
      if (v >= cnf.num_vars) {
        throw ParseError("parse_dimacs: variable out of declared range");
      }
      current.emplace_back(v, lit < 0);
    }
  }
  if (!current.empty()) {
    throw ParseError("parse_dimacs: clause missing terminating 0");
  }
  if (have_header &&
      cnf.clauses.size() != static_cast<std::size_t>(declared_clauses)) {
    throw ParseError("parse_dimacs: header declares " +
                     std::to_string(declared_clauses) + " clauses but " +
                     std::to_string(cnf.clauses.size()) + " were given");
  }
  return cnf;
}

std::string to_dimacs(const Cnf& cnf) {
  std::ostringstream out;
  out << "p cnf " << cnf.num_vars << " " << cnf.clauses.size() << "\n";
  for (const Clause& c : cnf.clauses) {
    for (const Lit l : c) out << (l.negated() ? "-" : "") << l.var() + 1 << " ";
    out << "0\n";
  }
  return out.str();
}

bool load_cnf(Solver& solver, const Cnf& cnf) {
  const int base = solver.num_vars();
  for (int i = 0; i < cnf.num_vars; ++i) solver.new_var();
  bool ok = true;
  for (const Clause& c : cnf.clauses) {
    Clause shifted;
    shifted.reserve(c.size());
    for (const Lit l : c) shifted.emplace_back(l.var() + base, l.negated());
    ok = solver.add_clause(std::move(shifted)) && ok;
  }
  return ok;
}

}  // namespace fannet::sat
