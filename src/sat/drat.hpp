/// \file
/// \brief DRAT proof logging and a bounded in-tree checker (DESIGN.md §11).
///
/// The CDCL solver (and every inprocessing pass) can log its reasoning into a
/// ProofLog: each clause it derives — learnt clauses, vivified/strengthened
/// clauses, variable-elimination resolvents, equivalent-literal rewrites,
/// failed-assumption conflict clauses — is an *addition* line, and each clause
/// it discards is a *deletion* line.  Every addition the solver produces has
/// the RUP property (reverse unit propagation: asserting the negation of the
/// clause and propagating over the formula plus the previously derived
/// clauses yields a conflict), so the log is a valid DRUP/DRAT proof and
/// `check_proof` validates it clause by clause with plain unit propagation —
/// no trust in the solver.  An UNSAT answer is *certified* when the check
/// reaches a conflict from the formula, the verified derivations, and the
/// solve's assumptions alone.
///
/// The checker is bounded: a propagation budget turns a pathological log into
/// an honest kBudget answer instead of a hang, mirroring the solver's own
/// kUnknown-on-resource-limit convention.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sat/dimacs.hpp"
#include "sat/types.hpp"

namespace fannet::sat {

/// In-memory DRAT transcript.  Records three kinds of line:
///   kInput   — a clause of the original formula (as handed to add_clause,
///              *before* the solver's level-0 simplifications), so the log
///              is a self-contained certificate;
///   kDerive  — a clause the solver derived (must be RUP at its position);
///   kDelete  — a clause the solver discarded (checker drops it if present).
class ProofLog {
 public:
  enum class Kind : std::uint8_t { kInput, kDerive, kDelete };

  struct Line {
    Kind kind = Kind::kDerive;
    Clause lits;
  };

  void add_input(std::span<const Lit> lits) { push(Kind::kInput, lits); }
  void add_derived(std::span<const Lit> lits) { push(Kind::kDerive, lits); }
  void add_deletion(std::span<const Lit> lits) { push(Kind::kDelete, lits); }

  [[nodiscard]] const std::vector<Line>& lines() const noexcept {
    return lines_;
  }
  [[nodiscard]] bool empty() const noexcept { return lines_.empty(); }
  void clear() { lines_.clear(); }

  /// Number of kDerive lines (the proof proper).
  [[nodiscard]] std::size_t derivations() const noexcept;

  /// The input clauses as a Cnf (num_vars = 1 + the largest var mentioned
  /// anywhere in the log, so assumptions over input vars always fit).
  [[nodiscard]] Cnf formula() const;

  /// Standard textual DRAT of the kDerive/kDelete lines ("d " prefix for
  /// deletions, clauses 0-terminated, 1-based DIMACS literals).
  [[nodiscard]] std::string to_drat() const;

 private:
  void push(Kind kind, std::span<const Lit> lits) {
    lines_.push_back({kind, Clause(lits.begin(), lits.end())});
  }

  std::vector<Line> lines_;
};

/// Outcome of a bounded proof check.
struct ProofCheckResult {
  enum class Status : std::uint8_t {
    kVerified,  ///< every derivation is RUP and UNSAT follows
    kFailed,    ///< some derivation is not RUP, or no conflict at the end
    kBudget,    ///< the propagation budget ran out before a verdict
  };
  Status status = Status::kFailed;
  std::string detail;                 ///< human-readable failure description
  std::uint64_t propagations = 0;     ///< work the checker performed

  [[nodiscard]] bool verified() const noexcept {
    return status == Status::kVerified;
  }
};

/// Forward DRUP check of `proof` (its kInput lines are the formula):
/// every kDerive line must be RUP with respect to the clauses present at
/// that point; afterwards the formula plus the derived clauses plus the
/// `assumptions` units must propagate to a conflict.  With no assumptions
/// this certifies plain UNSAT; with assumptions it certifies UNSAT-under-
/// assumptions (the solver's kUnsat from solve(assumptions)).
/// `propagation_budget` bounds total checker work (0 = default 50M).
[[nodiscard]] ProofCheckResult check_proof(
    const ProofLog& proof, std::span<const Lit> assumptions = {},
    std::uint64_t propagation_budget = 0);

}  // namespace fannet::sat
