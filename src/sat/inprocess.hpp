/// \file
/// \brief Inprocessing configuration and statistics for the CDCL solver.
///
/// Each simplification pass is individually toggleable so the differential
/// fuzz oracle (tests/test_sat_fuzz.cpp) can diff every on/off combination
/// against the plain solver, and so callers can trade preprocessing effort
/// against search effort per workload.  All passes run at decision level 0,
/// preserve satisfiability (bounded variable elimination and equivalent-
/// literal substitution preserve it *projected onto the remaining variables*;
/// full models are rebuilt by model reconstruction, DESIGN.md §11), and log
/// every derived/deleted clause to the attached ProofLog.
#pragma once

#include <cstdint>

namespace fannet::sat {

/// Which inprocessing passes Solver runs at the start of a solve whenever
/// the clause database changed since the last run.  Default: all off — a
/// default-constructed Solver behaves exactly like the plain CDCL core.
struct InprocessOptions {
  /// Clause vivification: re-derive each clause under unit propagation and
  /// keep the (often shorter) prefix that already propagates to conflict.
  bool vivify = false;
  /// Subsumption (drop clauses containing another clause) and
  /// self-subsumption (strengthen clauses by resolution with a
  /// near-subsuming clause).
  bool subsume = false;
  /// Bounded variable elimination by clause distribution, with model
  /// reconstruction for the eliminated variables.
  bool bve = false;
  /// SCC-based equivalent-literal substitution over the binary implication
  /// graph (also derives UNSAT when a literal is equivalent to its own
  /// negation).
  bool scc = false;

  [[nodiscard]] static constexpr InprocessOptions all() noexcept {
    return {true, true, true, true};
  }
  [[nodiscard]] constexpr bool any() const noexcept {
    return vivify || subsume || bve || scc;
  }
};

/// Cumulative inprocessing effect counters (across all rounds).
struct InprocessStats {
  std::uint64_t rounds = 0;             ///< inprocess() invocations that ran
  std::uint64_t satisfied_removed = 0;  ///< root-satisfied clauses dropped
  std::uint64_t strengthened_lits = 0;  ///< root-false literals stripped
  std::uint64_t subsumed = 0;           ///< clauses deleted by subsumption
  std::uint64_t self_subsumed = 0;      ///< literals removed by self-subsumption
  std::uint64_t vivify_shrunk = 0;      ///< clauses shortened by vivification
  std::uint64_t vivify_deleted = 0;     ///< clauses vivification proved redundant
  std::uint64_t eliminated_vars = 0;    ///< variables removed by BVE
  std::uint64_t bve_resolvents = 0;     ///< resolvent clauses BVE added
  std::uint64_t substituted_vars = 0;   ///< variables rewritten by SCC
};

}  // namespace fannet::sat
