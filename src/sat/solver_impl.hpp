/// \file
/// \brief Internal definition of Solver::Impl — the CDCL engine state shared by the
/// search core (sat/solver.cpp) and the inprocessing passes
/// (sat/inprocess.cpp).  Not part of the public API.
#pragma once

#include <memory>
#include <vector>

#include "sat/drat.hpp"
#include "sat/inprocess.hpp"
#include "sat/solver.hpp"
#include "sat/types.hpp"

namespace fannet::sat {

struct Solver::Impl {
  // ---- clause storage -----------------------------------------------------
  struct InternalClause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    /// Marked by inprocessing; swept (and its unique_ptr destroyed) at the
    /// end of the round.  Dead clauses are always detached first.
    bool dead = false;
  };

  struct Watcher {
    InternalClause* clause = nullptr;
    Lit blocker = kUndefLit;
  };

  std::vector<std::unique_ptr<InternalClause>> problem_clauses;
  std::vector<std::unique_ptr<InternalClause>> learnt_clauses;

  // ---- assignment state ---------------------------------------------------
  std::vector<LBool> assigns;               // per var
  std::vector<char> polarity;               // saved phase (1 = last was true)
  std::vector<int> level;                   // per var
  std::vector<InternalClause*> reason;      // per var
  std::vector<Lit> trail;
  std::vector<int> trail_lim;               // decision-level boundaries
  std::size_t qhead = 0;
  std::vector<std::vector<Watcher>> watches;  // indexed by Lit::code()
  bool ok = true;

  // ---- VSIDS --------------------------------------------------------------
  std::vector<double> activity;
  double var_inc = 1.0;
  static constexpr double kVarDecay = 0.95;
  double clause_inc = 1.0;
  static constexpr double kClauseDecay = 0.999;

  // Indexed binary max-heap over variable activity.
  std::vector<Var> heap;
  std::vector<int> heap_pos;  // per var; -1 = absent

  // ---- inprocessing -------------------------------------------------------
  /// Variable disposition: removed vars are skipped by branching, rejected
  /// in clauses/assumptions, and valued by model reconstruction.
  enum class VarState : char { kActive, kEliminated, kSubstituted };
  std::vector<char> frozen;         // per var: protected from removal
  std::vector<VarState> var_state;  // per var

  /// Model-reconstruction stack, processed in reverse after each kSat.
  /// BVE pushes the stored side's clauses (kClause entries, the eliminated
  /// side literal in `a`) followed by one kDefault (the literal to make
  /// true by default); SCC substitution pushes kEquiv (`a` must equal
  /// literal `b`).  Reverse order guarantees every literal an entry reads
  /// was reconstructed by a later-pushed entry already.
  struct ExtEntry {
    enum class Kind : char { kClause, kDefault, kEquiv };
    Kind kind = Kind::kDefault;
    Lit a = kUndefLit;
    Lit b = kUndefLit;  // kEquiv only: the representative literal
    Clause lits;        // kClause only: a clause containing `a`
  };
  std::vector<ExtEntry> extension;

  InprocessOptions inprocess_opts{};
  InprocessStats inprocess_counters{};
  /// Set by add_clause; inprocessing runs only when the DB changed.
  bool inprocess_dirty = true;

  ProofLog* proof = nullptr;

  // ---- scratch ------------------------------------------------------------
  std::vector<char> seen;
  std::vector<Lit> analyze_clear;
  std::vector<Lit> assumptions;
  std::vector<LBool> model;  // snapshot of assigns at the last kSat answer

  Solver* owner = nullptr;

  // ========================================================================
  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns.size()); }
  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim.size());
  }
  [[nodiscard]] LBool value(Var v) const { return assigns[v]; }
  [[nodiscard]] LBool value(Lit p) const {
    const LBool v = assigns[p.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    return lbool_from((v == LBool::kTrue) != p.negated());
  }
  [[nodiscard]] bool removed(Var v) const {
    return var_state[v] != VarState::kActive;
  }

  // ---- defined in solver.cpp ---------------------------------------------
  Var new_var();
  [[nodiscard]] bool heap_less(Var a, Var b) const;
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  void heap_insert(Var v);
  Var heap_pop();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(InternalClause& c);
  void decay_clause_activity();
  void unchecked_enqueue(Lit p, InternalClause* from);
  void new_decision_level();
  void cancel_until(int target_level);
  void attach(InternalClause* c);
  void detach(InternalClause* c);
  InternalClause* propagate();
  int analyze(InternalClause* conflict, std::vector<Lit>& out_learnt);
  void analyze_final(Lit p);
  [[nodiscard]] bool is_locked(const InternalClause* c) const;
  void reduce_db();
  Lit pick_branch_lit();
  [[nodiscard]] bool out_of_budget() const;
  SolveResult search(std::int64_t conflict_budget, std::size_t max_learnts);
  SolveResult solve_internal();

  // Proof-logging helpers (no-ops when no log is attached).
  void log_derived(std::span<const Lit> lits) {
    if (proof != nullptr) proof->add_derived(lits);
  }
  void log_deleted(std::span<const Lit> lits) {
    if (proof != nullptr) proof->add_deletion(lits);
  }

  // ---- defined in inprocess.cpp ------------------------------------------
  /// Runs the enabled passes at decision level 0.  May set ok = false (with
  /// the empty clause logged).  Called from solve_internal.
  void inprocess();
  /// Unit-propagates at the root and clears the reason pointers of all
  /// root-assigned variables so passes may delete any clause.  Returns
  /// false on a root conflict (ok is cleared and the empty clause logged).
  bool root_propagate();
  /// Enqueues a derived root unit and propagates (same contract).
  bool root_enqueue(Lit l);
  /// Drops root-satisfied clauses and strips root-false literals.
  void remove_satisfied();
  void pass_scc();
  void pass_subsume();
  void pass_vivify();
  void pass_bve();
  /// Marks a clause dead: detaches, logs the deletion, leaves the corpse
  /// for sweep_dead().
  void kill_clause(InternalClause* c);
  /// Erases dead clauses from both clause vectors.
  void sweep_dead();
  /// Extends `model` with reconstructed values for removed variables.
  void extend_model();
};

}  // namespace fannet::sat
