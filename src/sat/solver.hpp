/// \file
/// \brief CDCL SAT solver (the SAT substrate behind bounded model checking and the
/// "sat" verify engine).
///
/// A from-scratch conflict-driven clause-learning solver with the standard
/// modern architecture: two-watched-literal propagation with blockers, first
/// unique-implication-point conflict analysis with clause minimization, EVSIDS
/// variable activity, phase saving, Luby-sequence restarts, activity-driven
/// learnt-clause deletion, and incremental solving under assumptions.  On top
/// of the search core sit an optional inprocessing suite (vivification,
/// subsumption/self-subsumption, bounded variable elimination with model
/// reconstruction, SCC equivalent-literal substitution — sat/inprocess.hpp)
/// and optional DRAT proof logging (sat/drat.hpp) so every kUnsat answer can
/// be independently certified.  The design follows MiniSat's; everything is
/// implemented here from the published algorithms.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sat/inprocess.hpp"
#include "sat/types.hpp"

namespace fannet::sat {

class ProofLog;

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t deleted_clauses = 0;
};

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var new_var();
  [[nodiscard]] int num_vars() const noexcept;
  [[nodiscard]] std::size_t num_clauses() const noexcept;

  /// Adds a clause (empty clause or conflicting unit makes the instance
  /// permanently UNSAT).  Returns false iff the instance became UNSAT.
  /// Throws InvalidArgument if a literal references a variable removed by
  /// inprocessing (freeze such variables up front with set_frozen).
  bool add_clause(Clause lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }

  /// Solves the current formula; with `assumptions`, solves under those
  /// temporary unit assumptions (they do not persist).  Assumption
  /// variables must not have been removed by inprocessing (throws
  /// InvalidArgument) — freeze them with set_frozen before solving.
  [[nodiscard]] SolveResult solve();
  [[nodiscard]] SolveResult solve(std::span<const Lit> assumptions);

  /// Model access after kSat.  Unassigned variables read as false.
  /// Variables removed by inprocessing report their reconstructed value, so
  /// the model satisfies the formula as originally added.
  [[nodiscard]] bool model_value(Var v) const;
  [[nodiscard]] bool model_value(Lit l) const {
    return model_value(l.var()) != l.negated();
  }

  /// After kUnsat under assumptions: the subset of assumptions used
  /// (a "final conflict" a la MiniSat, negated: these cannot all hold).
  [[nodiscard]] const std::vector<Lit>& conflict_assumptions() const noexcept {
    return conflict_;
  }

  /// Abort search (returning kUnknown) after this many cumulative
  /// conflicts (0 = off).
  void set_conflict_limit(std::uint64_t limit) noexcept {
    conflict_limit_ = limit;
  }

  /// Abort search (returning kUnknown) after this many cumulative
  /// propagations (0 = off).  Together with the conflict limit this maps
  /// caller deadlines onto kUnknown — the solver never hangs.
  void set_propagation_limit(std::uint64_t limit) noexcept {
    propagation_limit_ = limit;
  }

  /// Installs a cooperative stop callback, polled wherever the budget
  /// limits are (after each conflict, at every decision point, and at the
  /// restart boundary): a true return aborts the solve with kUnknown,
  /// leaving the clause database (and all learnt clauses) intact so a
  /// later solve resumes incrementally.  This is how callers map
  /// wall-clock deadlines, cancellation tokens, and cooperative yields
  /// onto the solver without a watchdog thread.  Pass nullptr to detach.
  ///
  /// Threading contract: the solver itself is externally synchronized (one
  /// thread at a time), so `set_stop` must happen-before the `solve` that
  /// polls it and the callback runs on the solving thread.  Cross-thread
  /// interruption is expressed *inside* the callback — it reads atomics
  /// (a CancelToken, a task's yield flag) that other threads write; the
  /// std::function object itself is never mutated concurrently.
  void set_stop(std::function<bool()> stop) { stop_ = std::move(stop); }

  /// Selects the inprocessing passes to run at the start of each solve in
  /// which the clause database changed.  Default: none (the plain solver).
  void set_inprocess(InprocessOptions options) noexcept;
  [[nodiscard]] const InprocessStats& inprocess_stats() const noexcept;

  /// Protects a variable from being eliminated or substituted away by
  /// inprocessing.  Required for variables used in future assumptions or
  /// future clauses.
  void set_frozen(Var v, bool frozen = true);
  /// True once inprocessing removed the variable (eliminated/substituted).
  [[nodiscard]] bool is_removed(Var v) const;

  /// Attaches a DRAT transcript: every added clause is logged as input and
  /// every learnt/derived (and deleted) clause as a proof line, so a kUnsat
  /// answer can be replayed by sat::check_proof.  Pass nullptr to detach.
  /// The log must outlive the solver or the detach.  Attach before adding
  /// clauses — the log is a self-contained certificate only if it saw the
  /// whole formula.
  void set_proof(ProofLog* proof) noexcept;

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<Lit> conflict_;
  std::uint64_t conflict_limit_ = 0;
  std::uint64_t propagation_limit_ = 0;
  std::function<bool()> stop_;
  SolverStats stats_;

  friend struct Impl;
};

}  // namespace fannet::sat
