// CDCL SAT solver (the SAT substrate behind bounded model checking).
//
// A from-scratch conflict-driven clause-learning solver with the standard
// modern architecture: two-watched-literal propagation with blockers, first
// unique-implication-point conflict analysis with clause minimization, EVSIDS
// variable activity, phase saving, Luby-sequence restarts, activity-driven
// learnt-clause deletion, and incremental solving under assumptions.  The
// design follows MiniSat's; everything is implemented here from the
// published algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "sat/types.hpp"

namespace fannet::sat {

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_clauses = 0;
  std::uint64_t deleted_clauses = 0;
};

class Solver {
 public:
  Solver();
  ~Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var new_var();
  [[nodiscard]] int num_vars() const noexcept;
  [[nodiscard]] std::size_t num_clauses() const noexcept;

  /// Adds a clause (empty clause or conflicting unit makes the instance
  /// permanently UNSAT).  Returns false iff the instance became UNSAT.
  bool add_clause(Clause lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(Clause(lits));
  }

  /// Solves the current formula; with `assumptions`, solves under those
  /// temporary unit assumptions (they do not persist).
  [[nodiscard]] SolveResult solve();
  [[nodiscard]] SolveResult solve(std::span<const Lit> assumptions);

  /// Model access after kSat.  Unassigned variables read as false.
  [[nodiscard]] bool model_value(Var v) const;
  [[nodiscard]] bool model_value(Lit l) const {
    return model_value(l.var()) != l.negated();
  }

  /// After kUnsat under assumptions: the subset of assumptions used
  /// (a "final conflict" a la MiniSat, negated: these cannot all hold).
  [[nodiscard]] const std::vector<Lit>& conflict_assumptions() const noexcept {
    return conflict_;
  }

  /// Abort search (returning kUnknown) after this many conflicts (0 = off).
  void set_conflict_limit(std::uint64_t limit) noexcept {
    conflict_limit_ = limit;
  }

  [[nodiscard]] const SolverStats& stats() const noexcept { return stats_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<Lit> conflict_;
  std::uint64_t conflict_limit_ = 0;
  SolverStats stats_;

  friend struct Impl;
};

}  // namespace fannet::sat
