// Inprocessing passes for the CDCL solver (DESIGN.md §11).
//
// All passes run at decision level 0 on a propagation fixpoint, after the
// reason pointers of root-assigned variables have been cleared (so any
// clause may be deleted without leaving dangling pointers).  Every derived
// clause is logged to the attached ProofLog *before* the clause it replaces
// is deleted; every derivation is RUP (reverse unit propagation), so the
// bounded DRUP checker in sat/drat.cpp validates the whole transcript:
//
//   - remove_satisfied: stripping root-false literals yields a clause whose
//     negation propagates the stripped literals false and falsifies the
//     original clause.
//   - SCC substitution: rewriting x -> r under the binary clauses that make
//     x and r equivalent; asserting the rewritten clause's negation forces
//     ~x through a binary and falsifies the original clause.  A literal
//     equivalent to its own negation yields two RUP units and UNSAT.
//   - (Self-)subsumption: the strengthened clause is the resolvent of the
//     subsumer and the target.
//   - Vivification: the kept prefix is exactly the assumption set whose
//     negation propagated to conflict (or to an implied literal).
//   - BVE: each resolvent's negation makes both parents unit on the
//     eliminated variable.  Resolvents are derived before the parents are
//     deleted; learnt clauses mentioning the variable are deleted (sound:
//     they are redundant).  Model reconstruction restores the eliminated
//     variables afterwards, so callers always see a full model.
#include <algorithm>
#include <array>
#include <cstddef>

#include "sat/solver_impl.hpp"

namespace fannet::sat {

namespace {

/// Propagation cap for one vivification round: keeps inprocessing a small,
/// deterministic fraction of the solve budget.
constexpr std::uint64_t kVivifyPropagationBudget = 2'000'000;
/// BVE cost guards (MiniSat-style "grow = 0" elimination).
constexpr std::size_t kBveMaxOccurrences = 20;
constexpr std::size_t kBveMaxResolventLen = 20;

}  // namespace

bool Solver::Impl::root_propagate() {
  InternalClause* conflict = propagate();
  // Clear root reasons: passes may delete any clause afterwards.
  for (const Lit p : trail) reason[p.var()] = nullptr;
  if (conflict != nullptr) {
    log_derived(Clause{});
    ok = false;
    return false;
  }
  return true;
}

bool Solver::Impl::root_enqueue(Lit l) {
  // The caller has already logged the unit clause {l} as a derivation.
  if (value(l) == LBool::kTrue) return true;
  if (value(l) == LBool::kFalse) {
    log_derived(Clause{});
    ok = false;
    return false;
  }
  unchecked_enqueue(l, nullptr);
  reason[l.var()] = nullptr;
  return root_propagate();
}

void Solver::Impl::kill_clause(InternalClause* c) {
  detach(c);
  log_deleted(c->lits);
  c->dead = true;
  ++owner->stats_.deleted_clauses;
}

void Solver::Impl::sweep_dead() {
  const auto prune = [](std::vector<std::unique_ptr<InternalClause>>& v) {
    std::erase_if(v, [](const std::unique_ptr<InternalClause>& c) {
      return c->dead;
    });
  };
  prune(problem_clauses);
  prune(learnt_clauses);
}

void Solver::Impl::remove_satisfied() {
  const auto scrub = [&](std::vector<std::unique_ptr<InternalClause>>& list) {
    for (const auto& cp : list) {
      InternalClause* c = cp.get();
      if (c->dead || !ok) continue;
      bool satisfied = false;
      bool has_false = false;
      for (const Lit l : c->lits) {
        const LBool v = value(l);
        if (v == LBool::kTrue) satisfied = true;
        if (v == LBool::kFalse) has_false = true;
      }
      if (satisfied) {
        kill_clause(c);
        ++inprocess_counters.satisfied_removed;
        continue;
      }
      if (!has_false) continue;
      Clause stripped;
      stripped.reserve(c->lits.size());
      for (const Lit l : c->lits) {
        if (value(l) != LBool::kFalse) stripped.push_back(l);
      }
      // At a propagation fixpoint an unsatisfied clause keeps >= 2 free
      // literals (one free literal would have propagated; zero would have
      // conflicted), so the stripped clause attaches directly.
      inprocess_counters.strengthened_lits += c->lits.size() - stripped.size();
      detach(c);
      log_derived(stripped);
      log_deleted(c->lits);
      c->lits = std::move(stripped);
      attach(c);
    }
  };
  scrub(problem_clauses);
  scrub(learnt_clauses);
}

// ---------------------------------------------------------------------------
// SCC-based equivalent-literal substitution
// ---------------------------------------------------------------------------
void Solver::Impl::pass_scc() {
  const std::size_t n_lits = 2 * static_cast<std::size_t>(num_vars());
  // Binary implication graph: clause (a | b) contributes ~a -> b, ~b -> a.
  // Problem binaries only: substitution rewrites problem clauses with a
  // derive-before-delete transcript (preserving the implication chains the
  // proof checker replays), but learnt clauses are simply killed — an
  // equivalence justified through a learnt binary would lose its
  // derivation path mid-pass.
  std::vector<std::vector<std::int32_t>> adj(n_lits);
  const auto add_edges = [&](const InternalClause* c) {
    if (c->dead || c->lits.size() != 2) return;
    const Lit a = c->lits[0], b = c->lits[1];
    adj[static_cast<std::size_t>((~a).code())].push_back(b.code());
    adj[static_cast<std::size_t>((~b).code())].push_back(a.code());
  };
  for (const auto& c : problem_clauses) add_edges(c.get());

  // Iterative Tarjan SCC over literal nodes.
  constexpr std::int32_t kUnvisited = -1;
  std::vector<std::int32_t> index(n_lits, kUnvisited);
  std::vector<std::int32_t> lowlink(n_lits, 0);
  std::vector<char> on_stack(n_lits, 0);
  std::vector<std::int32_t> stack;
  std::vector<std::int32_t> comp_of(n_lits, kUnvisited);
  std::int32_t next_index = 0;
  std::int32_t next_comp = 0;

  struct Frame {
    std::int32_t node;
    std::size_t child;
  };
  std::vector<Frame> frames;
  for (std::size_t root = 0; root < n_lits; ++root) {
    if (index[root] != kUnvisited) continue;
    frames.push_back({static_cast<std::int32_t>(root), 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto node = static_cast<std::size_t>(f.node);
      if (f.child == 0) {
        index[node] = lowlink[node] = next_index++;
        stack.push_back(f.node);
        on_stack[node] = 1;
      }
      if (f.child < adj[node].size()) {
        const std::int32_t succ = adj[node][f.child++];
        const auto s = static_cast<std::size_t>(succ);
        if (index[s] == kUnvisited) {
          frames.push_back({succ, 0});
        } else if (on_stack[s]) {
          lowlink[node] = std::min(lowlink[node], index[s]);
        }
        continue;
      }
      if (lowlink[node] == index[node]) {
        while (true) {
          const std::int32_t w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = 0;
          comp_of[static_cast<std::size_t>(w)] = next_comp;
          if (w == f.node) break;
        }
        ++next_comp;
      }
      const std::int32_t done = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        const auto parent = static_cast<std::size_t>(frames.back().node);
        lowlink[parent] =
            std::min(lowlink[parent], lowlink[static_cast<std::size_t>(done)]);
      }
    }
  }

  // Group literals by component.
  std::vector<std::vector<Lit>> comps(static_cast<std::size_t>(next_comp));
  for (std::size_t code = 0; code < n_lits; ++code) {
    comps[static_cast<std::size_t>(comp_of[code])].push_back(
        Lit::from_code(static_cast<std::int32_t>(code)));
  }

  // Occurrence lists by variable (live clauses, both kinds) for rewriting.
  std::vector<std::vector<InternalClause*>> occ(
      static_cast<std::size_t>(num_vars()));
  const auto index_clause = [&](InternalClause* c) {
    if (c->dead) return;
    for (const Lit l : c->lits) occ[static_cast<std::size_t>(l.var())].push_back(c);
  };
  for (const auto& c : problem_clauses) index_clause(c.get());
  for (const auto& c : learnt_clauses) index_clause(c.get());

  for (const auto& comp : comps) {
    if (!ok) return;
    if (comp.size() < 2) continue;
    // Contradiction: l and ~l strongly connected means UNSAT.  Both units
    // are RUP through the binary implication chains, then the empty clause.
    for (const Lit l : comp) {
      if (std::find(comp.begin(), comp.end(), ~l) != comp.end()) {
        log_derived(std::array{~l});
        log_derived(std::array{l});
        log_derived(Clause{});
        ok = false;
        return;
      }
    }
    // Representative: prefer a frozen member (it can never be substituted
    // away), then the lowest literal code for determinism.
    Lit rep = kUndefLit;
    for (const Lit l : comp) {
      if (value(l) != LBool::kUndef || removed(l.var())) continue;
      const bool better =
          rep.is_undef() ||
          (frozen[l.var()] && !frozen[rep.var()]) ||
          (frozen[l.var()] == static_cast<bool>(frozen[rep.var()]) &&
           l.code() < rep.code());
      if (better) rep = l;
    }
    if (rep.is_undef()) continue;
    for (const Lit m : comp) {
      if (!ok) return;
      const Var x = m.var();
      if (x == rep.var() || frozen[x] || removed(x) ||
          value(x) != LBool::kUndef) {
        continue;
      }
      // m == rep, so Lit(x, false) == (m.negated() ? ~rep : rep).
      const Lit x_equals = m.negated() ? ~rep : rep;
      // Derive the two direct equivalence binaries first, while the
      // implication chains proving them are intact: each rewrite below is
      // then RUP by resolution with these clauses regardless of which chain
      // binaries the rewrites themselves consume.  They exist only in the
      // proof transcript (the solver is eliminating x) and are deleted once
      // the substitution completes.
      const Clause link_fwd{~Lit(x, false), x_equals};  // x -> x_equals
      const Clause link_bwd{Lit(x, false), ~x_equals};  // x_equals -> x
      log_derived(link_fwd);
      log_derived(link_bwd);
      for (InternalClause* c : occ[static_cast<std::size_t>(x)]) {
        if (c->dead) continue;
        bool mentions = false;
        for (const Lit l : c->lits) mentions = mentions || l.var() == x;
        if (!mentions) continue;
        if (c->learnt) {
          // Redundant clause: cheaper to drop than to rewrite.
          kill_clause(c);
          continue;
        }
        Clause mapped;
        mapped.reserve(c->lits.size());
        bool satisfied = false;
        for (const Lit l : c->lits) {
          const Lit t = l.var() == x ? (l.negated() ? ~x_equals : x_equals) : l;
          if (value(t) == LBool::kTrue) satisfied = true;
          if (value(t) == LBool::kFalse) continue;
          mapped.push_back(t);
        }
        std::sort(mapped.begin(), mapped.end(),
                  [](Lit a, Lit b) { return a.code() < b.code(); });
        bool taut = false;
        Clause dedup;
        for (const Lit l : mapped) {
          if (!dedup.empty() && l == dedup.back()) continue;
          if (!dedup.empty() && l == ~dedup.back()) taut = true;
          dedup.push_back(l);
        }
        if (satisfied || taut) {
          kill_clause(c);
          continue;
        }
        detach(c);
        log_derived(dedup);
        log_deleted(c->lits);
        if (dedup.size() == 1) {
          c->dead = true;
          ++owner->stats_.deleted_clauses;
          if (!root_enqueue(dedup[0])) return;
        } else {
          c->lits = std::move(dedup);
          attach(c);
          // The clause now mentions the representative; index it so a later
          // substitution of the representative's class would still find it.
          occ[static_cast<std::size_t>(x_equals.var())].push_back(c);
        }
      }
      log_deleted(link_fwd);
      log_deleted(link_bwd);
      var_state[x] = VarState::kSubstituted;
      extension.push_back({ExtEntry::Kind::kEquiv, Lit(x, false), x_equals, {}});
      ++inprocess_counters.substituted_vars;
    }
  }
}

// ---------------------------------------------------------------------------
// Subsumption and self-subsumption
// ---------------------------------------------------------------------------
void Solver::Impl::pass_subsume() {
  const std::size_t n_lits = 2 * static_cast<std::size_t>(num_vars());
  std::vector<std::vector<InternalClause*>> occ(n_lits);
  const auto index_clause = [&](InternalClause* c) {
    if (c->dead) return;
    for (const Lit l : c->lits) {
      occ[static_cast<std::size_t>(l.code())].push_back(c);
    }
  };
  for (const auto& c : problem_clauses) index_clause(c.get());
  for (const auto& c : learnt_clauses) index_clause(c.get());

  std::vector<char> mark(n_lits, 0);
  // Subsumers are problem clauses only: deleting a problem clause subsumed
  // by a *learnt* clause would let a later reduce_db() round drop both.
  const std::size_t n_problem = problem_clauses.size();
  for (std::size_t ci = 0; ci < n_problem; ++ci) {
    if (!ok) return;
    InternalClause* c = problem_clauses[ci].get();
    if (c->dead) continue;
    for (const Lit l : c->lits) mark[static_cast<std::size_t>(l.code())] = 1;
    // Probe the occurrence lists of the least-occurring literal and of its
    // complement: a subsumed clause contains every literal of c, so it is
    // in the first list; a self-subsumption target contains every literal
    // of c but one *flipped*, so when the flipped one is exactly the probe
    // literal the target only shows up in the complement's list.
    std::size_t best = 0;
    for (std::size_t k = 1; k < c->lits.size(); ++k) {
      if (occ[static_cast<std::size_t>(c->lits[k].code())].size() <
          occ[static_cast<std::size_t>(c->lits[best].code())].size()) {
        best = k;
      }
    }
    std::vector<InternalClause*> candidates =
        occ[static_cast<std::size_t>(c->lits[best].code())];
    const auto& flipped = occ[static_cast<std::size_t>((~c->lits[best]).code())];
    candidates.insert(candidates.end(), flipped.begin(), flipped.end());
    for (std::size_t di = 0; di < candidates.size(); ++di) {
      InternalClause* d = candidates[di];
      if (d == c || d->dead || d->lits.size() < c->lits.size()) continue;
      std::size_t matched = 0;
      std::size_t negated = 0;
      Lit neg_lit = kUndefLit;
      for (const Lit q : d->lits) {
        if (mark[static_cast<std::size_t>(q.code())] != 0) {
          ++matched;
        } else if (mark[static_cast<std::size_t>((~q).code())] != 0) {
          ++negated;
          neg_lit = q;
        }
      }
      if (matched == c->lits.size()) {
        kill_clause(d);
        ++inprocess_counters.subsumed;
      } else if (matched + 1 == c->lits.size() && negated == 1) {
        // Self-subsumption: d is strengthened by resolving with c on
        // neg_lit.  The resolvent is RUP, logged before the original goes.
        Clause stronger;
        stronger.reserve(d->lits.size() - 1);
        for (const Lit q : d->lits) {
          if (q != neg_lit) stronger.push_back(q);
        }
        detach(d);
        log_derived(stronger);
        log_deleted(d->lits);
        ++inprocess_counters.self_subsumed;
        if (stronger.size() == 1) {
          d->dead = true;
          ++owner->stats_.deleted_clauses;
          const Lit unit = stronger[0];
          for (const Lit l : c->lits) {
            mark[static_cast<std::size_t>(l.code())] = 0;
          }
          if (!root_enqueue(unit)) return;
          for (const Lit l : c->lits) {
            mark[static_cast<std::size_t>(l.code())] = 1;
          }
        } else {
          d->lits = std::move(stronger);
          attach(d);
        }
      }
    }
    for (const Lit l : c->lits) mark[static_cast<std::size_t>(l.code())] = 0;
  }
}

// ---------------------------------------------------------------------------
// Clause vivification
// ---------------------------------------------------------------------------
void Solver::Impl::pass_vivify() {
  const std::uint64_t start = owner->stats_.propagations;
  const std::size_t n_problem = problem_clauses.size();
  for (std::size_t ci = 0; ci < n_problem; ++ci) {
    if (!ok) return;
    if (owner->stats_.propagations - start > kVivifyPropagationBudget) break;
    InternalClause* c = problem_clauses[ci].get();
    if (c->dead || c->lits.size() < 2) continue;
    bool root_satisfied = false;
    for (const Lit l : c->lits) root_satisfied |= value(l) == LBool::kTrue;
    if (root_satisfied) {
      kill_clause(c);
      ++inprocess_counters.vivify_deleted;
      continue;
    }
    detach(c);
    // Assume the negation of each literal in turn; stop early when the
    // prefix already propagates to conflict or implies a later literal.
    Clause kept;
    bool done = false;
    for (const Lit l : c->lits) {
      const LBool v = value(l);
      if (v == LBool::kFalse) continue;  // implied false by the prefix
      if (v == LBool::kTrue) {           // prefix implies l: clause is RUP
        kept.push_back(l);
        done = true;
        break;
      }
      new_decision_level();
      unchecked_enqueue(~l, nullptr);
      if (propagate() != nullptr) {
        kept.push_back(l);
        done = true;
        break;
      }
      kept.push_back(l);
    }
    (void)done;
    cancel_until(0);
    if (kept.size() >= c->lits.size()) {
      attach(c);
      continue;
    }
    if (kept.empty()) {
      // Every literal became root-false mid-pass while the clause was
      // detached: the formula is UNSAT.
      log_derived(Clause{});
      c->dead = true;
      ++owner->stats_.deleted_clauses;
      ok = false;
      return;
    }
    bool now_satisfied = false;
    for (const Lit l : kept) now_satisfied |= value(l) == LBool::kTrue;
    if (now_satisfied) {
      // Shrunk to a clause satisfied at the root: just delete the original.
      log_deleted(c->lits);
      c->dead = true;
      ++owner->stats_.deleted_clauses;
      ++inprocess_counters.vivify_deleted;
      continue;
    }
    log_derived(kept);
    log_deleted(c->lits);
    ++inprocess_counters.vivify_shrunk;
    if (kept.size() == 1) {
      c->dead = true;
      ++owner->stats_.deleted_clauses;
      if (!root_enqueue(kept[0])) return;
    } else {
      c->lits = std::move(kept);
      attach(c);
    }
  }
}

// ---------------------------------------------------------------------------
// Bounded variable elimination
// ---------------------------------------------------------------------------
void Solver::Impl::pass_bve() {
  const std::size_t n_lits = 2 * static_cast<std::size_t>(num_vars());
  std::vector<std::vector<InternalClause*>> occ(n_lits);
  for (const auto& cp : problem_clauses) {
    InternalClause* c = cp.get();
    if (c->dead) continue;
    for (const Lit l : c->lits) {
      occ[static_cast<std::size_t>(l.code())].push_back(c);
    }
  }
  std::vector<std::vector<InternalClause*>> learnt_occ(
      static_cast<std::size_t>(num_vars()));
  for (const auto& cp : learnt_clauses) {
    InternalClause* c = cp.get();
    if (c->dead) continue;
    for (const Lit l : c->lits) {
      learnt_occ[static_cast<std::size_t>(l.var())].push_back(c);
    }
  }

  const auto live_side = [&](Lit l, std::vector<InternalClause*>& out) {
    out.clear();
    for (InternalClause* c : occ[static_cast<std::size_t>(l.code())]) {
      if (c->dead) continue;
      bool mentions = false;
      for (const Lit q : c->lits) mentions = mentions || q == l;
      if (mentions) out.push_back(c);
    }
  };

  std::vector<InternalClause*> pos, neg;
  for (Var v = 0; v < num_vars(); ++v) {
    if (!ok) return;
    if (frozen[v] || removed(v) || value(v) != LBool::kUndef) continue;
    const Lit pl(v, false), nl(v, true);
    live_side(pl, pos);
    live_side(nl, neg);
    if (pos.empty() && neg.empty()) continue;
    if (pos.size() + neg.size() > kBveMaxOccurrences) continue;

    // Distribute: collect all non-tautological resolvents; bail out if the
    // clause count would grow or a resolvent gets too long.
    std::vector<Clause> resolvents;
    bool abort = false;
    for (const InternalClause* p : pos) {
      for (const InternalClause* n : neg) {
        Clause r;
        r.reserve(p->lits.size() + n->lits.size());
        for (const Lit l : p->lits) {
          if (l != pl) r.push_back(l);
        }
        for (const Lit l : n->lits) {
          if (l != nl) r.push_back(l);
        }
        std::sort(r.begin(), r.end(),
                  [](Lit a, Lit b) { return a.code() < b.code(); });
        bool taut = false;
        bool satisfied = false;
        Clause dedup;
        for (const Lit l : r) {
          if (!dedup.empty() && l == dedup.back()) continue;
          if (!dedup.empty() && l == ~dedup.back()) taut = true;
          if (value(l) == LBool::kTrue) satisfied = true;
          if (value(l) == LBool::kFalse) continue;
          dedup.push_back(l);
        }
        if (taut || satisfied) continue;
        if (dedup.size() > kBveMaxResolventLen) {
          abort = true;
          break;
        }
        resolvents.push_back(std::move(dedup));
        if (resolvents.size() > pos.size() + neg.size()) {
          abort = true;
          break;
        }
      }
      if (abort) break;
    }
    if (abort) continue;

    // Commit.  Order matters for the proof: resolvents are RUP only while
    // their parents are still present, so log them all first; and unit
    // resolvents are enqueued only after the parents are detached, so their
    // propagation cannot assign through clauses that are about to vanish.
    for (const Clause& r : resolvents) log_derived(r);

    // Model reconstruction: store the smaller side (its clauses all contain
    // `keep`), defaulting the variable so the *other* side is satisfied.
    const Lit keep = pos.size() <= neg.size() ? pl : nl;
    const auto& side = pos.size() <= neg.size() ? pos : neg;
    for (const InternalClause* c : side) {
      extension.push_back({ExtEntry::Kind::kClause, keep, kUndefLit, c->lits});
    }
    extension.push_back({ExtEntry::Kind::kDefault, ~keep, kUndefLit, {}});

    for (InternalClause* c : pos) kill_clause(c);
    for (InternalClause* c : neg) kill_clause(c);
    for (InternalClause* c : learnt_occ[static_cast<std::size_t>(v)]) {
      if (c->dead) continue;
      bool mentions = false;
      for (const Lit q : c->lits) mentions = mentions || q.var() == v;
      if (mentions) kill_clause(c);
    }
    var_state[v] = VarState::kEliminated;
    ++inprocess_counters.eliminated_vars;
    inprocess_counters.bve_resolvents += resolvents.size();

    std::vector<Lit> units;
    for (Clause& r : resolvents) {
      if (r.size() == 1) {
        units.push_back(r[0]);
        continue;
      }
      auto nc = std::make_unique<InternalClause>();
      nc->lits = std::move(r);
      attach(nc.get());
      for (const Lit l : nc->lits) {
        occ[static_cast<std::size_t>(l.code())].push_back(nc.get());
      }
      problem_clauses.push_back(std::move(nc));
    }
    for (const Lit u : units) {
      if (!root_enqueue(u)) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Driver and model reconstruction
// ---------------------------------------------------------------------------
void Solver::Impl::inprocess() {
  if (!root_propagate()) return;
  ++inprocess_counters.rounds;
  remove_satisfied();
  if (ok && inprocess_opts.scc) pass_scc();
  if (ok && inprocess_opts.subsume) pass_subsume();
  if (ok && inprocess_opts.vivify) pass_vivify();
  if (ok && inprocess_opts.bve) pass_bve();
  sweep_dead();
}

void Solver::Impl::extend_model() {
  if (extension.empty()) return;
  const auto lit_true = [&](Lit l) {
    const LBool v = model[static_cast<std::size_t>(l.var())];
    const bool val = v == LBool::kTrue;  // kUndef reads as false
    return val != l.negated();
  };
  const auto make_true = [&](Lit l) {
    model[static_cast<std::size_t>(l.var())] =
        l.negated() ? LBool::kFalse : LBool::kTrue;
  };
  for (auto it = extension.rbegin(); it != extension.rend(); ++it) {
    switch (it->kind) {
      case ExtEntry::Kind::kDefault:
        make_true(it->a);
        break;
      case ExtEntry::Kind::kClause: {
        bool satisfied = false;
        for (const Lit l : it->lits) satisfied = satisfied || lit_true(l);
        if (!satisfied) make_true(it->a);
        break;
      }
      case ExtEntry::Kind::kEquiv:
        // a must take the truth value of the representative literal b.
        make_true(lit_true(it->b) ? it->a : ~it->a);
        break;
    }
  }
}

}  // namespace fannet::sat
