#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

#include "sat/drat.hpp"
#include "sat/solver_impl.hpp"
#include "util/error.hpp"

namespace fannet::sat {

namespace {

/// Finite Luby sequence value: luby(y, i) = y^k with k from the
/// reluctant-doubling recurrence (Knuth's formulation of Luby et al.).
double luby(double y, int x) {
  int size = 1;
  int seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, seq);
}

}  // namespace

Var Solver::Impl::new_var() {
  const Var v = num_vars();
  assigns.push_back(LBool::kUndef);
  polarity.push_back(0);
  level.push_back(0);
  reason.push_back(nullptr);
  activity.push_back(0.0);
  seen.push_back(0);
  watches.emplace_back();
  watches.emplace_back();
  frozen.push_back(0);
  var_state.push_back(VarState::kActive);
  heap_pos.push_back(-1);
  heap_insert(v);
  return v;
}

// ---- heap -----------------------------------------------------------------
bool Solver::Impl::heap_less(Var a, Var b) const {
  return activity[a] < activity[b];
}
void Solver::Impl::heap_percolate_up(int i) {
  const Var v = heap[i];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    if (!heap_less(heap[parent], v)) break;
    heap[i] = heap[parent];
    heap_pos[heap[i]] = i;
    i = parent;
  }
  heap[i] = v;
  heap_pos[v] = i;
}
void Solver::Impl::heap_percolate_down(int i) {
  const Var v = heap[i];
  const int n = static_cast<int>(heap.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap[child], heap[child + 1])) ++child;
    if (!heap_less(v, heap[child])) break;
    heap[i] = heap[child];
    heap_pos[heap[i]] = i;
    i = child;
  }
  heap[i] = v;
  heap_pos[v] = i;
}
void Solver::Impl::heap_insert(Var v) {
  if (heap_pos[v] >= 0) return;
  heap.push_back(v);
  heap_pos[v] = static_cast<int>(heap.size()) - 1;
  heap_percolate_up(heap_pos[v]);
}
Var Solver::Impl::heap_pop() {
  const Var top = heap[0];
  heap_pos[top] = -1;
  heap[0] = heap.back();
  heap.pop_back();
  if (!heap.empty()) {
    heap_pos[heap[0]] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::Impl::bump_var(Var v) {
  activity[v] += var_inc;
  if (activity[v] > 1e100) {
    for (auto& a : activity) a *= 1e-100;
    var_inc *= 1e-100;
  }
  if (heap_pos[v] >= 0) heap_percolate_up(heap_pos[v]);
}
void Solver::Impl::decay_var_activity() { var_inc /= kVarDecay; }

void Solver::Impl::bump_clause(InternalClause& c) {
  c.activity += clause_inc;
  if (c.activity > 1e20) {
    for (auto& cl : learnt_clauses) cl->activity *= 1e-20;
    clause_inc *= 1e-20;
  }
}
void Solver::Impl::decay_clause_activity() { clause_inc /= kClauseDecay; }

// ---- assignment -----------------------------------------------------------
void Solver::Impl::unchecked_enqueue(Lit p, InternalClause* from) {
  assigns[p.var()] = lbool_from(!p.negated());
  level[p.var()] = decision_level();
  reason[p.var()] = from;
  trail.push_back(p);
}

void Solver::Impl::new_decision_level() {
  trail_lim.push_back(static_cast<int>(trail.size()));
}

void Solver::Impl::cancel_until(int target_level) {
  if (decision_level() <= target_level) return;
  const int lim = trail_lim[target_level];
  for (int i = static_cast<int>(trail.size()) - 1; i >= lim; --i) {
    const Var v = trail[i].var();
    polarity[v] = trail[i].negated() ? 0 : 1;  // phase saving
    assigns[v] = LBool::kUndef;
    reason[v] = nullptr;
    heap_insert(v);
  }
  trail.resize(lim);
  trail_lim.resize(target_level);
  qhead = trail.size();
}

// ---- watches --------------------------------------------------------------
void Solver::Impl::attach(InternalClause* c) {
  watches[(~c->lits[0]).code()].push_back({c, c->lits[1]});
  watches[(~c->lits[1]).code()].push_back({c, c->lits[0]});
}
void Solver::Impl::detach(InternalClause* c) {
  for (int k = 0; k < 2; ++k) {
    auto& ws = watches[(~c->lits[k]).code()];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].clause == c) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

/// Unit propagation; returns the conflicting clause or nullptr.
Solver::Impl::InternalClause* Solver::Impl::propagate() {
  InternalClause* conflict = nullptr;
  while (qhead < trail.size()) {
    const Lit p = trail[qhead++];
    ++owner->stats_.propagations;
    auto& ws = watches[p.code()];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      InternalClause& c = *w.clause;
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      ++i;
      // Invariant: c.lits[1] == false_lit.
      const Lit first = c.lits[0];
      if (value(first) == LBool::kTrue) {
        ws[j++] = {&c, first};
        continue;
      }
      bool found_watch = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches[(~c.lits[1]).code()].push_back({&c, first});
          found_watch = true;
          break;
        }
      }
      if (found_watch) continue;
      // Clause is unit or conflicting under the current assignment.
      ws[j++] = {&c, first};
      if (value(first) == LBool::kFalse) {
        conflict = &c;
        qhead = trail.size();
        while (i < ws.size()) ws[j++] = ws[i++];
      } else {
        unchecked_enqueue(first, &c);
      }
    }
    ws.resize(j);
    if (conflict != nullptr) break;
  }
  return conflict;
}

// ---- conflict analysis ----------------------------------------------------
/// 1UIP learning.  Fills `out_learnt` (first literal = asserting literal)
/// and returns the backtrack level.
int Solver::Impl::analyze(InternalClause* conflict,
                          std::vector<Lit>& out_learnt) {
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // slot for the asserting literal
  int path_count = 0;
  Lit p = kUndefLit;
  int index = static_cast<int>(trail.size()) - 1;

  do {
    bump_clause(*conflict);
    const std::size_t start = p.is_undef() ? 0 : 1;
    for (std::size_t k = start; k < conflict->lits.size(); ++k) {
      const Lit q = conflict->lits[k];
      if (!seen[q.var()] && level[q.var()] > 0) {
        bump_var(q.var());
        seen[q.var()] = 1;
        if (level[q.var()] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    while (!seen[trail[index].var()]) --index;
    p = trail[index--];
    conflict = reason[p.var()];
    seen[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization (local): a literal is redundant if its
  // reason clause exists and every other literal in it is already seen.
  analyze_clear.assign(out_learnt.begin(), out_learnt.end());
  std::size_t keep = 1;
  for (std::size_t k = 1; k < out_learnt.size(); ++k) {
    const Lit q = out_learnt[k];
    InternalClause* r = reason[q.var()];
    bool redundant = (r != nullptr);
    if (redundant) {
      for (std::size_t m = 1; m < r->lits.size(); ++m) {
        const Lit x = r->lits[m];
        if (!seen[x.var()] && level[x.var()] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) out_learnt[keep++] = q;
  }
  out_learnt.resize(keep);
  for (const Lit q : analyze_clear) seen[q.var()] = 0;

  // Backtrack level: highest level among the non-asserting literals.
  int bt_level = 0;
  if (out_learnt.size() > 1) {
    std::size_t max_i = 1;
    for (std::size_t k = 2; k < out_learnt.size(); ++k) {
      if (level[out_learnt[k].var()] > level[out_learnt[max_i].var()]) {
        max_i = k;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    bt_level = level[out_learnt[1].var()];
  }
  return bt_level;
}

/// After a final conflict on assumption `p`: collect the subset of
/// assumptions implying the conflict into owner->conflict_.
void Solver::Impl::analyze_final(Lit p) {
  owner->conflict_.clear();
  owner->conflict_.push_back(~p);
  if (decision_level() == 0) {
    log_derived(owner->conflict_);
    return;
  }
  seen[p.var()] = 1;
  for (int i = static_cast<int>(trail.size()) - 1; i >= trail_lim[0]; --i) {
    const Var v = trail[i].var();
    if (!seen[v]) continue;
    if (reason[v] == nullptr) {
      owner->conflict_.push_back(~trail[i]);
    } else {
      for (std::size_t k = 1; k < reason[v]->lits.size(); ++k) {
        const Lit q = reason[v]->lits[k];
        if (level[q.var()] > 0) seen[q.var()] = 1;
      }
    }
    seen[v] = 0;
  }
  seen[p.var()] = 0;
  // The final conflict clause (negated failed assumptions) is RUP with
  // respect to the current clause database: asserting the collected
  // assumptions replays the propagation chain that produced the conflict.
  log_derived(owner->conflict_);
}

// ---- learnt-clause management ---------------------------------------------
bool Solver::Impl::is_locked(const InternalClause* c) const {
  const Lit first = c->lits[0];
  return reason[first.var()] == c && value(first) == LBool::kTrue;
}

void Solver::Impl::reduce_db() {
  std::sort(learnt_clauses.begin(), learnt_clauses.end(),
            [](const auto& a, const auto& b) {
              if ((a->lits.size() == 2) != (b->lits.size() == 2)) {
                return a->lits.size() == 2;  // keep binaries
              }
              return a->activity > b->activity;
            });
  const std::size_t keep_count = learnt_clauses.size() / 2;
  std::vector<std::unique_ptr<InternalClause>> kept;
  kept.reserve(keep_count + 8);
  for (std::size_t i = 0; i < learnt_clauses.size(); ++i) {
    auto& c = learnt_clauses[i];
    if (i < keep_count || c->lits.size() == 2 || is_locked(c.get())) {
      kept.push_back(std::move(c));
    } else {
      detach(c.get());
      log_deleted(c->lits);
      ++owner->stats_.deleted_clauses;
    }
  }
  learnt_clauses = std::move(kept);
}

// ---- top-level search -----------------------------------------------------
Lit Solver::Impl::pick_branch_lit() {
  while (!heap.empty()) {
    const Var v = heap[0];
    if (value(v) == LBool::kUndef && !removed(v)) {
      heap_pop();
      return Lit(v, polarity[v] == 0);
    }
    heap_pop();
  }
  return kUndefLit;
}

bool Solver::Impl::out_of_budget() const {
  if (owner->conflict_limit_ != 0 &&
      owner->stats_.conflicts >= owner->conflict_limit_) {
    return true;
  }
  if (owner->propagation_limit_ != 0 &&
      owner->stats_.propagations >= owner->propagation_limit_) {
    return true;
  }
  return owner->stop_ && owner->stop_();
}

/// One restart-bounded search episode.
SolveResult Solver::Impl::search(std::int64_t conflict_budget,
                                 std::size_t max_learnts) {
  std::vector<Lit> learnt;
  std::int64_t conflicts_here = 0;
  while (true) {
    InternalClause* conflict = propagate();
    if (conflict != nullptr) {
      ++owner->stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0) {
        log_derived(Clause{});
        ok = false;
        return SolveResult::kUnsat;
      }
      const int bt = analyze(conflict, learnt);
      log_derived(learnt);
      cancel_until(bt);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], nullptr);
      } else {
        auto c = std::make_unique<InternalClause>();
        c->lits = learnt;
        c->learnt = true;
        bump_clause(*c);
        attach(c.get());
        unchecked_enqueue(learnt[0], c.get());
        learnt_clauses.push_back(std::move(c));
        ++owner->stats_.learnt_clauses;
      }
      decay_var_activity();
      decay_clause_activity();
      if (out_of_budget()) {
        cancel_until(0);
        return SolveResult::kUnknown;
      }
      continue;
    }
    // No conflict.
    if (out_of_budget()) {
      cancel_until(0);
      return SolveResult::kUnknown;
    }
    if (conflict_budget >= 0 && conflicts_here >= conflict_budget) {
      cancel_until(0);
      return SolveResult::kUnknown;  // restart
    }
    if (learnt_clauses.size() >= max_learnts + trail.size()) reduce_db();

    // Respect assumptions before free decisions.
    Lit next = kUndefLit;
    while (decision_level() < static_cast<int>(assumptions.size())) {
      const Lit a = assumptions[decision_level()];
      if (value(a) == LBool::kTrue) {
        new_decision_level();  // already implied; dummy level keeps indexing
      } else if (value(a) == LBool::kFalse) {
        analyze_final(a);
        return SolveResult::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next.is_undef()) {
      next = pick_branch_lit();
      if (next.is_undef()) return SolveResult::kSat;  // all assigned
      ++owner->stats_.decisions;
    }
    new_decision_level();
    unchecked_enqueue(next, nullptr);
  }
}

SolveResult Solver::Impl::solve_internal() {
  owner->conflict_.clear();
  if (ok && inprocess_opts.any() && inprocess_dirty) {
    inprocess();
    inprocess_dirty = false;
  }
  if (!ok) return SolveResult::kUnsat;
  std::size_t max_learnts =
      std::max<std::size_t>(1000, problem_clauses.size() / 3);
  SolveResult result = SolveResult::kUnknown;
  for (int restarts = 0; result == SolveResult::kUnknown; ++restarts) {
    const double budget = 100.0 * luby(2.0, restarts);
    result = search(static_cast<std::int64_t>(budget), max_learnts);
    if (result == SolveResult::kUnknown) {
      ++owner->stats_.restarts;
      max_learnts = max_learnts + max_learnts / 10;
    }
    if (out_of_budget()) break;
  }
  if (result == SolveResult::kSat) {
    model = assigns;
    extend_model();
  }
  cancel_until(0);
  return result;
}

Solver::Solver() : impl_(std::make_unique<Impl>()) { impl_->owner = this; }
Solver::~Solver() = default;

Var Solver::new_var() { return impl_->new_var(); }
int Solver::num_vars() const noexcept { return impl_->num_vars(); }
std::size_t Solver::num_clauses() const noexcept {
  return impl_->problem_clauses.size();
}

bool Solver::add_clause(Clause lits) {
  Impl& s = *impl_;
  if (!s.ok) return false;
  if (s.decision_level() != 0) {
    throw InvalidArgument("Solver::add_clause: only at decision level 0");
  }
  for (const Lit p : lits) {
    if (p.var() < 0 || p.var() >= s.num_vars()) {
      throw InvalidArgument("Solver::add_clause: literal out of range");
    }
    if (s.removed(p.var())) {
      throw InvalidArgument(
          "Solver::add_clause: variable was removed by inprocessing "
          "(freeze it with set_frozen before solving)");
    }
  }
  // Log the caller's clause before simplification: the proof's input lines
  // must be the formula as added, not the solver's internal form.
  if (s.proof != nullptr) s.proof->add_input(lits);
  s.inprocess_dirty = true;
  // Sort/dedup; drop clauses that are trivially true or contain true lits.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  Clause out;
  Lit prev = kUndefLit;
  for (const Lit p : lits) {
    if (s.value(p) == LBool::kTrue || p == ~prev) return true;  // satisfied/taut
    if (s.value(p) != LBool::kFalse && p != prev) out.push_back(p);
    prev = p;
  }
  if (out.empty()) {
    s.log_derived(Clause{});
    s.ok = false;
    return false;
  }
  if (out.size() == 1) {
    s.unchecked_enqueue(out[0], nullptr);
    if (s.propagate() != nullptr) {
      s.log_derived(Clause{});
      s.ok = false;
      return false;
    }
    return true;
  }
  auto c = std::make_unique<Impl::InternalClause>();
  c->lits = std::move(out);
  s.attach(c.get());
  s.problem_clauses.push_back(std::move(c));
  return true;
}

SolveResult Solver::solve() { return solve({}); }

SolveResult Solver::solve(std::span<const Lit> assumptions) {
  for (const Lit a : assumptions) {
    if (a.var() < 0 || a.var() >= impl_->num_vars()) {
      throw InvalidArgument("Solver::solve: assumption out of range");
    }
    if (impl_->removed(a.var())) {
      throw InvalidArgument(
          "Solver::solve: assumption variable was removed by inprocessing "
          "(freeze it with set_frozen before solving)");
    }
  }
  impl_->assumptions.assign(assumptions.begin(), assumptions.end());
  const SolveResult r = impl_->solve_internal();
  impl_->assumptions.clear();
  return r;
}

bool Solver::model_value(Var v) const {
  if (v < 0 || v >= impl_->num_vars()) {
    throw InvalidArgument("Solver::model_value: variable out of range");
  }
  if (static_cast<std::size_t>(v) >= impl_->model.size()) return false;
  return impl_->model[v] == LBool::kTrue;
}

void Solver::set_inprocess(InprocessOptions options) noexcept {
  impl_->inprocess_opts = options;
  impl_->inprocess_dirty = true;
}

const InprocessStats& Solver::inprocess_stats() const noexcept {
  return impl_->inprocess_counters;
}

void Solver::set_frozen(Var v, bool frozen) {
  if (v < 0 || v >= impl_->num_vars()) {
    throw InvalidArgument("Solver::set_frozen: variable out of range");
  }
  if (frozen && impl_->removed(v)) {
    throw InvalidArgument("Solver::set_frozen: variable was already removed");
  }
  impl_->frozen[v] = frozen ? 1 : 0;
}

bool Solver::is_removed(Var v) const {
  if (v < 0 || v >= impl_->num_vars()) {
    throw InvalidArgument("Solver::is_removed: variable out of range");
  }
  return impl_->removed(v);
}

void Solver::set_proof(ProofLog* proof) noexcept { impl_->proof = proof; }

}  // namespace fannet::sat
